#include "core/asha.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/check.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

AshaOptions ToyOptions() {
  // The paper's running example: r=1, R=9, eta=3, s=0 (Figures 1-2).
  AshaOptions options;
  options.r = 1;
  options.R = 9;
  options.eta = 3;
  options.s = 0;
  return options;
}

TEST(Asha, BottomRungJobsWhenNothingPromotable) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), ToyOptions());
  for (int i = 0; i < 5; ++i) {
    const auto job = asha.GetJob();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->rung, 0);
    EXPECT_DOUBLE_EQ(job->to_resource, 1);
    EXPECT_DOUBLE_EQ(job->from_resource, 0);
    EXPECT_EQ(job->trial_id, i);
  }
  EXPECT_EQ(asha.NumTrialsCreated(), 5);
}

TEST(Asha, PromotesTopOfBottomRung) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), ToyOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(*asha.GetJob());
  asha.ReportResult(jobs[0], 0.2);
  asha.ReportResult(jobs[1], 0.5);
  asha.ReportResult(jobs[2], 0.9);
  // floor(3/3)=1 candidate: trial 0 (best loss).
  const auto promotion = asha.GetJob();
  ASSERT_TRUE(promotion.has_value());
  EXPECT_EQ(promotion->trial_id, 0);
  EXPECT_EQ(promotion->rung, 1);
  EXPECT_DOUBLE_EQ(promotion->to_resource, 3);
  EXPECT_DOUBLE_EQ(promotion->from_resource, 1);  // resumed from checkpoint
}

TEST(Asha, NoDoublePromotionSampleInstead) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), ToyOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(*asha.GetJob());
  for (int i = 0; i < 3; ++i) asha.ReportResult(jobs[i], 0.1 * (i + 1));
  const auto first = *asha.GetJob();
  EXPECT_EQ(first.rung, 1);
  // Same state, next request: candidate already promoted -> grow rung 0.
  const auto second = *asha.GetJob();
  EXPECT_EQ(second.rung, 0);
  EXPECT_EQ(second.trial_id, 3);
}

TEST(Asha, Figure2AsynchronousPromotionTrace) {
  // Reproduces Figure 2 (right): 9 configurations with the paper's
  // performance ordering; configs 1, 6, 8 reach rung 1 and config 8 reaches
  // rung 2. Trial ids are 0-based here (config k = trial k-1). The full
  // single-worker trace is 13 jobs, matching the 13/9 * time(R) analysis of
  // Section 3.2.
  const std::map<TrialId, double> loss{{0, 0.2}, {1, 0.6}, {2, 0.7},
                                       {3, 0.8}, {4, 0.9}, {5, 0.3},
                                       {6, 0.5}, {7, 0.1}, {8, 0.4}};
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), ToyOptions());
  std::vector<std::pair<TrialId, int>> trace;  // (trial, rung)
  for (int step = 0; step < 13; ++step) {
    const auto job = *asha.GetJob();
    trace.emplace_back(job.trial_id, job.rung);
    asha.ReportResult(job, loss.at(job.trial_id));
  }
  // Note the one divergence from the figure's drawing: once rung 0 holds 8
  // results, floor(8/3) = 2 candidates means config 8 (trial 7, the best)
  // is promotable *immediately*, before a 9th config is sampled — Algorithm
  // 2 promotes whenever possible rather than batching by threes.
  const std::vector<std::pair<TrialId, int>> expected{
      {0, 0}, {1, 0}, {2, 0}, {0, 1},          // promote config 1
      {3, 0}, {4, 0}, {5, 0}, {5, 1},          // promote config 6
      {6, 0}, {7, 0}, {7, 1}, {7, 2},          // config 8 rises to rung 2
      {8, 0},                                  // then the bottom rung grows
  };
  EXPECT_EQ(trace, expected);
}

TEST(Asha, TopRungNeverPromoted) {
  const std::map<TrialId, double> loss{{0, 0.2}, {1, 0.6}, {2, 0.7},
                                       {3, 0.8}, {4, 0.9}, {5, 0.3},
                                       {6, 0.5}, {7, 0.1}, {8, 0.4}};
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), ToyOptions());
  for (int step = 0; step < 13; ++step) {
    const auto job = *asha.GetJob();
    asha.ReportResult(job, loss.at(job.trial_id));
  }
  // Trial 7 is complete at rung 2 (resource R); next job must be a fresh
  // configuration, not a promotion of trial 7.
  const auto job = *asha.GetJob();
  EXPECT_EQ(job.rung, 0);
  EXPECT_EQ(asha.trials().Get(7).status, TrialStatus::kCompleted);
}

TEST(Asha, IntermediateLossIncumbent) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), ToyOptions());
  EXPECT_FALSE(asha.Current().has_value());
  const auto j0 = *asha.GetJob();
  asha.ReportResult(j0, 0.5);
  ASSERT_TRUE(asha.Current().has_value());
  EXPECT_EQ(asha.Current()->trial_id, j0.trial_id);
  EXPECT_DOUBLE_EQ(asha.Current()->loss, 0.5);
  const auto j1 = *asha.GetJob();
  asha.ReportResult(j1, 0.8);  // worse: incumbent unchanged
  EXPECT_EQ(asha.Current()->trial_id, j0.trial_id);
  const auto j2 = *asha.GetJob();
  asha.ReportResult(j2, 0.1);  // better
  EXPECT_EQ(asha.Current()->trial_id, j2.trial_id);
}

TEST(Asha, NoResumeRetrainsFromScratch) {
  auto options = ToyOptions();
  options.resume_from_checkpoint = false;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(*asha.GetJob());
  for (int i = 0; i < 3; ++i) asha.ReportResult(jobs[i], 0.1 * (i + 1));
  const auto promotion = *asha.GetJob();
  EXPECT_EQ(promotion.rung, 1);
  EXPECT_DOUBLE_EQ(promotion.from_resource, 0);  // full retrain
  EXPECT_DOUBLE_EQ(promotion.to_resource, 3);
}

TEST(Asha, LostJobsAreForgotten) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), ToyOptions());
  const auto j0 = *asha.GetJob();
  const auto j1 = *asha.GetJob();
  const auto j2 = *asha.GetJob();
  asha.ReportResult(j0, 0.3);
  asha.ReportLost(j1);
  asha.ReportResult(j2, 0.4);
  EXPECT_EQ(asha.trials().Get(j1.trial_id).status, TrialStatus::kLost);
  // Rung 0 has 2 recorded results: floor(2/3)=0 -> no promotion possible.
  const auto next = *asha.GetJob();
  EXPECT_EQ(next.rung, 0);
  EXPECT_EQ(asha.rung(0).NumRecorded(), 2u);
}

TEST(Asha, PromotedTrialLostDoesNotRecyclePromotionSlot) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), ToyOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(*asha.GetJob());
  for (int i = 0; i < 3; ++i) asha.ReportResult(jobs[i], 0.1 * (i + 1));
  const auto promotion = *asha.GetJob();
  asha.ReportLost(promotion);
  // Trial 0's promotion is spent; the next job is a fresh config.
  const auto next = *asha.GetJob();
  EXPECT_EQ(next.rung, 0);
  EXPECT_TRUE(asha.rung(0).IsPromoted(promotion.trial_id));
}

TEST(Asha, MaxTrialsLimitsAndFinishes) {
  auto options = ToyOptions();
  options.max_trials = 3;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(*asha.GetJob());
  EXPECT_FALSE(asha.GetJob().has_value());  // cap reached, nothing promotable
  EXPECT_FALSE(asha.Finished());            // in-flight jobs may unlock work
  for (int i = 0; i < 3; ++i) asha.ReportResult(jobs[i], 0.1 * (i + 1));
  // One promotion remains available.
  EXPECT_FALSE(asha.Finished());
  const auto promotion = *asha.GetJob();
  EXPECT_EQ(promotion.rung, 1);
  asha.ReportResult(promotion, 0.05);
  // rung1 has 1 result (floor(1/3)=0), rung0 candidates exhausted.
  EXPECT_FALSE(asha.GetJob().has_value());
  EXPECT_TRUE(asha.Finished());
}

TEST(Asha, FinishedMatchesPromotableTrialsOracle) {
  // Regression for the O(1) Finished() rewrite: at every step of a seeded
  // run, Finished() must agree with the answer the old O(n)-scan
  // PromotableTrials-based check would have given.
  auto options = ToyOptions();
  options.R = 27;
  options.max_trials = 30;
  options.seed = 7;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  Rng loss_rng(11);
  const auto oracle_finished = [&] {
    if (asha.NumTrialsCreated() < options.max_trials) return false;
    for (std::size_t k = 0; k < asha.NumRungs(); ++k) {
      if (static_cast<int>(k) ==
          static_cast<int>(asha.NumRungs()) - 1) {
        continue;  // top rung never promotes
      }
      if (!asha.rung(k).PromotableTrials(options.eta).empty()) return false;
    }
    return true;
  };
  int steps = 0;
  for (; steps < 200; ++steps) {
    const auto job = asha.GetJob();
    if (!job) break;
    asha.ReportResult(*job, loss_rng.Uniform());
    // No jobs in flight here, so the in-flight guard is inert and the two
    // checks must coincide exactly.
    ASSERT_EQ(asha.Finished(), oracle_finished()) << "step " << steps;
  }
  EXPECT_TRUE(asha.Finished());
  EXPECT_TRUE(oracle_finished());
  EXPECT_GT(steps, 30);  // promotions happened beyond the sampled cohort
}

TEST(Asha, InfiniteHorizonGrowsRungs) {
  auto options = ToyOptions();
  options.infinite_horizon = true;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  EXPECT_EQ(asha.NumRungs(), 1u);
  // Drive one configuration up several rungs: always make trial 0 the best.
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(*asha.GetJob());
  for (int i = 0; i < 3; ++i) asha.ReportResult(jobs[i], 0.1 * (i + 1));
  auto p1 = *asha.GetJob();
  EXPECT_EQ(p1.rung, 1);
  EXPECT_DOUBLE_EQ(p1.to_resource, 3);
  asha.ReportResult(p1, 0.05);
  EXPECT_GE(asha.NumRungs(), 2u);
  // rung1 has 1 result: floor(1/3) = 0, so no promotion yet; feed it more.
  // Add configs + promotions until rung1 holds 3, then trial promotes to
  // rung 2 at resource 9 — and beyond R with more data (no cap).
  std::map<TrialId, double> losses{{0, 0.05}};
  for (int step = 0; step < 40; ++step) {
    const auto job = *asha.GetJob();
    const double loss =
        losses.contains(job.trial_id) ? losses[job.trial_id]
                                      : 0.5 + 0.001 * static_cast<double>(
                                                          job.trial_id);
    losses[job.trial_id] = loss;
    asha.ReportResult(job, loss);
    if (job.to_resource > 9.0) {
      SUCCEED();  // exceeded the finite-horizon cap: infinite horizon works
      return;
    }
  }
  FAIL() << "no job ever exceeded the finite-horizon resource";
}

TEST(Asha, ResourceDispatchedAccounting) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), ToyOptions());
  const auto j0 = *asha.GetJob();
  EXPECT_DOUBLE_EQ(asha.ResourceDispatched(), 1);
  asha.ReportResult(j0, 0.5);
  const auto j1 = *asha.GetJob();
  (void)j1;
  EXPECT_DOUBLE_EQ(asha.ResourceDispatched(), 2);
}

TEST(Asha, JobCarriesBracketLabel) {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.s = 1;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  const auto job = *asha.GetJob();
  EXPECT_EQ(job.bracket, 1);
  // s=1: bottom rung trains to r*eta^1 = 3.
  EXPECT_DOUBLE_EQ(job.to_resource, 3);
}

TEST(Asha, RejectsNullSampler) {
  EXPECT_THROW(AshaScheduler(nullptr, ToyOptions()), CheckError);
}

TEST(Asha, DeterministicAcrossInstances) {
  AshaScheduler a(MakeRandomSampler(UnitSpace()), ToyOptions());
  AshaScheduler b(MakeRandomSampler(UnitSpace()), ToyOptions());
  for (int i = 0; i < 10; ++i) {
    const auto ja = *a.GetJob();
    const auto jb = *b.GetJob();
    EXPECT_EQ(ja.config, jb.config);
    a.ReportResult(ja, 0.5);
    b.ReportResult(jb, 0.5);
  }
}

}  // namespace
}  // namespace hypertune
