#include "core/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/rung.h"
#include "core/trial.h"

namespace hypertune {
namespace {

TEST(SMax, PowersAndNonPowers) {
  EXPECT_EQ(SMax(1, 9, 3), 2);
  EXPECT_EQ(SMax(1, 256, 4), 4);
  EXPECT_EQ(SMax(1, 255, 4), 3);   // just below a power
  EXPECT_EQ(SMax(1, 257, 4), 4);   // just above
  EXPECT_EQ(SMax(1, 1, 2), 0);
  EXPECT_EQ(SMax(117.1875, 30000, 4), 4);  // r = R/256 with fp ratio
}

TEST(SMax, Validation) {
  EXPECT_THROW(SMax(0, 10, 2), CheckError);
  EXPECT_THROW(SMax(10, 5, 2), CheckError);
  EXPECT_THROW(SMax(1, 10, 1.5), CheckError);
}

TEST(BracketGeometry, Figure1Bracket0) {
  // Paper Figure 1: n=9, r=1, R=9, eta=3, bracket s=0.
  const auto g = BracketGeometry::Make(1, 9, 3, 0);
  EXPECT_EQ(g.NumRungs(), 3);
  EXPECT_DOUBLE_EQ(g.RungResource(0), 1);
  EXPECT_DOUBLE_EQ(g.RungResource(1), 3);
  EXPECT_DOUBLE_EQ(g.RungResource(2), 9);
  const auto sizes = g.RungSizes(9);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{9, 3, 1}));
  // Each rung's budget is 9, total 27 (Figure 1 right, bracket 0).
  EXPECT_DOUBLE_EQ(g.TotalBudget(9, /*resume=*/false), 27);
}

TEST(BracketGeometry, Figure1Bracket1) {
  const auto g = BracketGeometry::Make(1, 9, 3, 1);
  EXPECT_EQ(g.NumRungs(), 2);
  EXPECT_DOUBLE_EQ(g.RungResource(0), 3);
  EXPECT_DOUBLE_EQ(g.RungResource(1), 9);
  EXPECT_EQ(g.RungSizes(9), (std::vector<std::size_t>{9, 3}));
  // 9*3 + 3*9 = 54 (Figure 1 right, bracket 1: 27 per rung).
  EXPECT_DOUBLE_EQ(g.TotalBudget(9, false), 54);
}

TEST(BracketGeometry, Figure1Bracket2) {
  const auto g = BracketGeometry::Make(1, 9, 3, 2);
  EXPECT_EQ(g.NumRungs(), 1);
  EXPECT_DOUBLE_EQ(g.RungResource(0), 9);
  EXPECT_EQ(g.RungSizes(9), (std::vector<std::size_t>{9}));
  EXPECT_DOUBLE_EQ(g.TotalBudget(9, false), 81);
}

TEST(BracketGeometry, PaperSection41Setting) {
  // Section 4.1/4.2: n=256, eta=4, s=0, r=R/256, R=30000 iterations.
  const double R = 30000;
  const auto g = BracketGeometry::Make(R / 256, R, 4, 0);
  EXPECT_EQ(g.NumRungs(), 5);
  EXPECT_EQ(g.RungSizes(256), (std::vector<std::size_t>{256, 64, 16, 4, 1}));
  EXPECT_DOUBLE_EQ(g.RungResource(4), R);
  EXPECT_NEAR(g.RungResource(0), R / 256, 1e-9);
}

TEST(BracketGeometry, ResumeBudgetPaysIncrementsOnly) {
  const auto g = BracketGeometry::Make(1, 9, 3, 0);
  // rung0: 9*1; rung1: 3*(3-1); rung2: 1*(9-3) => 9 + 6 + 6 = 21.
  EXPECT_DOUBLE_EQ(g.TotalBudget(9, /*resume=*/true), 21);
}

TEST(BracketGeometry, TopRungIsExactlyR) {
  // Non-power ratio: R/r = 10, eta = 3 -> s_max = 2, top rung capped at R.
  const auto g = BracketGeometry::Make(1, 10, 3, 0);
  EXPECT_EQ(g.NumRungs(), 3);
  EXPECT_DOUBLE_EQ(g.RungResource(2), 10);
}

TEST(BracketGeometry, InvalidEarlyStoppingRate) {
  EXPECT_THROW(BracketGeometry::Make(1, 9, 3, 3), CheckError);
  EXPECT_THROW(BracketGeometry::Make(1, 9, 3, -1), CheckError);
}

TEST(BracketGeometry, RungResourceBoundsChecked) {
  const auto g = BracketGeometry::Make(1, 9, 3, 0);
  EXPECT_THROW(g.RungResource(3), CheckError);
  EXPECT_THROW(g.RungResource(-1), CheckError);
}

TEST(TrialBank, CreateAndLookup) {
  TrialBank bank;
  Configuration config;
  config.Set("x", ParamValue{0.5});
  const TrialId id = bank.Create(config, 2);
  EXPECT_EQ(id, 0);
  EXPECT_EQ(bank.Get(id).bracket, 2);
  EXPECT_EQ(bank.Get(id).status, TrialStatus::kPending);
  EXPECT_EQ(bank.size(), 1u);
  EXPECT_THROW(bank.Get(5), CheckError);
  EXPECT_THROW(bank.Get(-1), CheckError);
}

TEST(TrialBank, ObservationsUpdateCheckpoint) {
  TrialBank bank;
  const TrialId id = bank.Create(Configuration{}, 0);
  bank.RecordObservation(id, 10, 0.5);
  bank.RecordObservation(id, 30, 0.3);
  const Trial& trial = bank.Get(id);
  EXPECT_DOUBLE_EQ(trial.resource_trained, 30);
  EXPECT_EQ(trial.observations.size(), 2u);
  EXPECT_DOUBLE_EQ(trial.BestLoss(), 0.3);
  EXPECT_DOUBLE_EQ(trial.LatestLoss(), 0.3);
}

TEST(Trial, LossesOnEmptyObservations) {
  Trial trial;
  EXPECT_TRUE(std::isinf(trial.BestLoss()));
  EXPECT_TRUE(std::isinf(trial.LatestLoss()));
}

TEST(Rung, RecordKeepsSortedAndRejectsDuplicates) {
  Rung rung;
  rung.Record(1, 0.5);
  rung.Record(2, 0.2);
  rung.Record(3, 0.8);
  EXPECT_EQ(rung.NumRecorded(), 3u);
  EXPECT_EQ(rung.BestTrial(), 2);
  EXPECT_DOUBLE_EQ(rung.BestLoss(), 0.2);
  EXPECT_THROW(rung.Record(1, 0.1), CheckError);
}

TEST(Rung, PromotableTopFraction) {
  Rung rung;
  for (int i = 0; i < 6; ++i) rung.Record(i, 0.1 * (i + 1));
  // floor(6/3) = 2 candidates: trials 0 and 1.
  auto promotable = rung.PromotableTrials(3.0);
  EXPECT_EQ(promotable, (std::vector<TrialId>{0, 1}));
  rung.MarkPromoted(0);
  promotable = rung.PromotableTrials(3.0);
  EXPECT_EQ(promotable, (std::vector<TrialId>{1}));
  EXPECT_TRUE(rung.IsPromoted(0));
  EXPECT_FALSE(rung.IsPromoted(1));
}

TEST(Rung, PromotableEmptyWhenTooFew) {
  Rung rung;
  rung.Record(0, 0.5);
  rung.Record(1, 0.6);
  // floor(2/3) = 0: nothing promotable yet.
  EXPECT_TRUE(rung.PromotableTrials(3.0).empty());
}

TEST(Rung, TiesBreakTowardEarlierTrial) {
  Rung rung;
  rung.Record(7, 0.5);
  rung.Record(3, 0.5);
  rung.Record(9, 0.9);
  const auto promotable = rung.PromotableTrials(3.0);
  ASSERT_EQ(promotable.size(), 1u);
  EXPECT_EQ(promotable[0], 3);  // equal loss -> lower id first
}

TEST(Rung, TopKClampsToSize) {
  Rung rung;
  rung.Record(0, 0.3);
  rung.Record(1, 0.1);
  EXPECT_EQ(rung.TopK(5), (std::vector<TrialId>{1, 0}));
  EXPECT_EQ(rung.TopK(1), (std::vector<TrialId>{1}));
  EXPECT_TRUE(rung.TopK(0).empty());
}

TEST(Rung, DoublePromotionThrows) {
  Rung rung;
  rung.Record(0, 0.3);
  rung.MarkPromoted(0);
  EXPECT_THROW(rung.MarkPromoted(0), CheckError);
  EXPECT_THROW(rung.MarkPromoted(42), CheckError);  // not recorded
}

TEST(Rung, EmptyRungQueries) {
  Rung rung;
  EXPECT_TRUE(std::isinf(rung.BestLoss()));
  EXPECT_EQ(rung.BestTrial(), -1);
  EXPECT_TRUE(rung.PromotableTrials(2.0).empty());
}

}  // namespace
}  // namespace hypertune
