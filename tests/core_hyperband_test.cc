#include "core/async_hyperband.h"
#include "core/hyperband.h"
#include "core/random_search.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/check.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

// ---------------------------------------------------------------- Hyperband

HyperbandOptions ToyHyperband() {
  HyperbandOptions options;
  options.n0 = 9;
  options.r = 1;
  options.R = 9;
  options.eta = 3;
  options.loop_forever = false;
  return options;
}

TEST(Hyperband, LoopsThroughBracketsWithShrinkingN) {
  HyperbandScheduler hb(MakeRandomSampler(UnitSpace()), ToyHyperband());
  std::map<int, std::map<int, int>> jobs;  // bracket -> rung -> count
  while (!hb.Finished()) {
    const auto job = hb.GetJob();
    ASSERT_TRUE(job.has_value());
    ++jobs[job->bracket][job->rung];
    hb.ReportResult(*job, 0.001 * static_cast<double>(job->trial_id));
  }
  // Bracket s=0: 9/3/1; s=1: 3 at r=3 then 1 at 9; s=2: 1 at 9.
  EXPECT_EQ(jobs[0][0], 9);
  EXPECT_EQ(jobs[0][1], 3);
  EXPECT_EQ(jobs[0][2], 1);
  EXPECT_EQ(jobs[1][0], 3);
  EXPECT_EQ(jobs[1][1], 1);
  EXPECT_EQ(jobs[2][0], 1);
}

TEST(Hyperband, BracketOrderIsSequential) {
  HyperbandScheduler hb(MakeRandomSampler(UnitSpace()), ToyHyperband());
  int last_bracket = 0;
  while (!hb.Finished()) {
    const auto job = *hb.GetJob();
    EXPECT_GE(job.bracket, last_bracket);  // never goes back in one pass
    last_bracket = job.bracket;
    hb.ReportResult(job, 0.001 * static_cast<double>(job.trial_id));
  }
  EXPECT_EQ(last_bracket, 2);
}

TEST(Hyperband, LoopForeverRestartsBracketZero) {
  auto options = ToyHyperband();
  options.loop_forever = true;
  HyperbandScheduler hb(MakeRandomSampler(UnitSpace()), options);
  std::set<int> brackets_seen;
  for (int i = 0; i < 40; ++i) {
    const auto job = *hb.GetJob();
    brackets_seen.insert(job.bracket);
    hb.ReportResult(job, 0.001 * static_cast<double>(job.trial_id));
  }
  EXPECT_FALSE(hb.Finished());
  EXPECT_TRUE(brackets_seen.contains(0));
  EXPECT_TRUE(brackets_seen.contains(1));
}

TEST(Hyperband, IncumbentAggregatesAcrossBrackets) {
  HyperbandScheduler hb(MakeRandomSampler(UnitSpace()), ToyHyperband());
  while (!hb.Finished()) {
    const auto job = *hb.GetJob();
    hb.ReportResult(job, 0.001 * static_cast<double>(job.trial_id + 1));
  }
  ASSERT_TRUE(hb.Current().has_value());
  // Trial 0 (bracket 0 winner) has the lowest loss anywhere.
  EXPECT_EQ(hb.Current()->trial_id, 0);
}

// ---------------------------------------------------------- AsyncHyperband

AsyncHyperbandOptions ToyAsyncHyperband() {
  AsyncHyperbandOptions options;
  options.n0 = 9;
  options.r = 1;
  options.R = 9;
  options.eta = 3;
  return options;
}

TEST(AsyncHyperband, StartsInBracketZero) {
  AsyncHyperbandScheduler ahb(MakeRandomSampler(UnitSpace()),
                              ToyAsyncHyperband());
  EXPECT_EQ(ahb.NumBrackets(), 3u);
  EXPECT_EQ(ahb.CurrentBracket(), 0);
  const auto job = *ahb.GetJob();
  EXPECT_EQ(job.bracket, 0);
  EXPECT_DOUBLE_EQ(job.to_resource, 1);
}

TEST(AsyncHyperband, SwitchesBracketWhenBudgetDepleted) {
  AsyncHyperbandScheduler ahb(MakeRandomSampler(UnitSpace()),
                              ToyAsyncHyperband());
  std::set<int> brackets_seen;
  for (int i = 0; i < 120; ++i) {
    const auto job = *ahb.GetJob();
    brackets_seen.insert(job.bracket);
    ahb.ReportResult(job, 0.001 * static_cast<double>(job.trial_id));
  }
  // Bracket 0's hypothetical budget (21 with resume) depletes well within
  // 120 unit jobs, so at least brackets 0 and 1 must appear.
  EXPECT_GE(brackets_seen.size(), 2u);
  EXPECT_TRUE(brackets_seen.contains(0));
  EXPECT_TRUE(brackets_seen.contains(1));
}

TEST(AsyncHyperband, ResultsRouteToOwningBracket) {
  AsyncHyperbandScheduler ahb(MakeRandomSampler(UnitSpace()),
                              ToyAsyncHyperband());
  // Collect jobs until one comes from bracket 1, reporting as we go.
  for (int i = 0; i < 200; ++i) {
    const auto job = *ahb.GetJob();
    ahb.ReportResult(job, 0.5);
    if (job.bracket == 1) {
      // Bracket 1 recorded the result in *its* ASHA instance.
      EXPECT_GE(ahb.bracket(1).rung(0).NumRecorded(), 1u);
      return;
    }
  }
  FAIL() << "bracket 1 never scheduled";
}

TEST(AsyncHyperband, SharedTrialBankHasUniqueIds) {
  AsyncHyperbandScheduler ahb(MakeRandomSampler(UnitSpace()),
                              ToyAsyncHyperband());
  std::set<TrialId> fresh_ids;
  for (int i = 0; i < 100; ++i) {
    const auto job = *ahb.GetJob();
    if (job.rung == 0 && job.from_resource == 0 &&
        ahb.trials().Get(job.trial_id).observations.empty()) {
      EXPECT_TRUE(fresh_ids.insert(job.trial_id).second)
          << "trial id " << job.trial_id << " reused across brackets";
    }
    ahb.ReportResult(job, 0.5);
  }
}

TEST(AsyncHyperband, NeverFinishes) {
  AsyncHyperbandScheduler ahb(MakeRandomSampler(UnitSpace()),
                              ToyAsyncHyperband());
  EXPECT_FALSE(ahb.Finished());
}

// ------------------------------------------------------------ RandomSearch

TEST(RandomSearch, AlwaysFullResourceJobs) {
  RandomSearchOptions options;
  options.R = 100;
  RandomSearchScheduler rs(MakeRandomSampler(UnitSpace()), options);
  for (int i = 0; i < 10; ++i) {
    const auto job = *rs.GetJob();
    EXPECT_DOUBLE_EQ(job.to_resource, 100);
    EXPECT_DOUBLE_EQ(job.from_resource, 0);
    rs.ReportResult(job, 0.5);
    EXPECT_EQ(rs.trials().Get(job.trial_id).status, TrialStatus::kCompleted);
  }
}

TEST(RandomSearch, IncumbentIsBestCompleted) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler rs(MakeRandomSampler(UnitSpace()), options);
  const auto j0 = *rs.GetJob();
  const auto j1 = *rs.GetJob();
  rs.ReportResult(j0, 0.7);
  rs.ReportResult(j1, 0.3);
  ASSERT_TRUE(rs.Current().has_value());
  EXPECT_EQ(rs.Current()->trial_id, j1.trial_id);
}

TEST(RandomSearch, MaxTrialsFinishes) {
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = 2;
  RandomSearchScheduler rs(MakeRandomSampler(UnitSpace()), options);
  const auto j0 = *rs.GetJob();
  const auto j1 = *rs.GetJob();
  EXPECT_FALSE(rs.GetJob().has_value());
  EXPECT_FALSE(rs.Finished());  // jobs still in flight
  rs.ReportResult(j0, 0.5);
  rs.ReportLost(j1);
  EXPECT_TRUE(rs.Finished());
}

}  // namespace
}  // namespace hypertune
