#include "core/sha.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/check.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

ShaOptions ToyOptions() {
  ShaOptions options;
  options.n = 9;
  options.r = 1;
  options.R = 9;
  options.eta = 3;
  options.s = 0;
  options.spawn_new_brackets = false;
  return options;
}

TEST(Sha, RejectsTooFewConfigurations) {
  auto options = ToyOptions();
  options.n = 8;  // needs >= eta^(s_max - s) = 9
  EXPECT_THROW(SyncShaScheduler(MakeRandomSampler(UnitSpace()), options),
               CheckError);
}

TEST(Sha, DispatchesWholeRungThenBlocks) {
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), ToyOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) {
    const auto job = sha.GetJob();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->rung, 0);
    EXPECT_DOUBLE_EQ(job->to_resource, 1);
    jobs.push_back(*job);
  }
  // Synchronization: rung 0 incomplete -> no work (a straggler would idle
  // every other worker here).
  EXPECT_FALSE(sha.GetJob().has_value());
  // Report 8 of 9: still blocked.
  for (int i = 0; i < 8; ++i) sha.ReportResult(jobs[i], 0.1 * (i + 1));
  EXPECT_FALSE(sha.GetJob().has_value());
  sha.ReportResult(jobs[8], 0.9);
  // Rung settled: top 3 promoted.
  const auto promotion = sha.GetJob();
  ASSERT_TRUE(promotion.has_value());
  EXPECT_EQ(promotion->rung, 1);
  EXPECT_DOUBLE_EQ(promotion->to_resource, 3);
}

TEST(Sha, FullBracketPromotionCounts) {
  // Algorithm 1 on the toy bracket: 9 -> 3 -> 1 (Figure 1 left).
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), ToyOptions());
  std::map<int, int> jobs_per_rung;
  while (!sha.Finished()) {
    const auto job = sha.GetJob();
    ASSERT_TRUE(job.has_value());
    ++jobs_per_rung[job->rung];
    // Loss by trial id: lower id = better.
    sha.ReportResult(*job, 0.01 * static_cast<double>(job->trial_id));
  }
  EXPECT_EQ(jobs_per_rung[0], 9);
  EXPECT_EQ(jobs_per_rung[1], 3);
  EXPECT_EQ(jobs_per_rung[2], 1);
  EXPECT_EQ(sha.NumCompletedBrackets(), 1u);
  // Best trials promoted: ids 0,1,2 to rung 1; id 0 to rung 2.
  EXPECT_EQ(sha.trials().Get(0).status, TrialStatus::kCompleted);
  EXPECT_DOUBLE_EQ(sha.trials().Get(0).resource_trained, 9);
}

TEST(Sha, ByBracketIncumbentOnlyAtCompletion) {
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), ToyOptions());
  while (!sha.Finished()) {
    const auto job = *sha.GetJob();
    const bool was_finished = sha.Finished();
    EXPECT_FALSE(was_finished);
    // Recommendation appears only once the whole bracket settles.
    EXPECT_FALSE(sha.Current().has_value());
    sha.ReportResult(job, 0.01 * static_cast<double>(job.trial_id));
  }
  ASSERT_TRUE(sha.Current().has_value());
  EXPECT_EQ(sha.Current()->trial_id, 0);
}

TEST(Sha, ByRungIncumbentAfterEachRung) {
  auto options = ToyOptions();
  options.incumbent_policy = IncumbentPolicy::kByRung;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) jobs.push_back(*sha.GetJob());
  for (int i = 0; i < 8; ++i) {
    sha.ReportResult(jobs[i], 0.1 * (i + 1));
    EXPECT_FALSE(sha.Current().has_value());
  }
  sha.ReportResult(jobs[8], 0.9);
  // Rung 0 settled: incumbent available immediately (Appendix A.2).
  ASSERT_TRUE(sha.Current().has_value());
  EXPECT_EQ(sha.Current()->trial_id, jobs[0].trial_id);
}

TEST(Sha, DroppedJobsShrinkPromotions) {
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), ToyOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) jobs.push_back(*sha.GetJob());
  // Drop 4 of 9; 5 survive -> floor(5/3) = 1 promotion only.
  for (int i = 0; i < 5; ++i) sha.ReportResult(jobs[i], 0.1 * (i + 1));
  for (int i = 5; i < 9; ++i) sha.ReportLost(jobs[i]);
  const auto promotion = sha.GetJob();
  ASSERT_TRUE(promotion.has_value());
  EXPECT_EQ(promotion->rung, 1);
  EXPECT_FALSE(sha.GetJob().has_value());  // only one survivor promoted
}

TEST(Sha, BracketDiesWhenTooFewSurvive) {
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), ToyOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) jobs.push_back(*sha.GetJob());
  // Only 2 survive rung 0: floor(2/3) = 0 promotions -> bracket complete.
  sha.ReportResult(jobs[0], 0.1);
  sha.ReportResult(jobs[1], 0.2);
  for (int i = 2; i < 9; ++i) sha.ReportLost(jobs[i]);
  EXPECT_TRUE(sha.Finished());
  EXPECT_EQ(sha.NumCompletedBrackets(), 1u);
}

TEST(Sha, SpawnsNewBracketWhenBlocked) {
  auto options = ToyOptions();
  options.spawn_new_brackets = true;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) jobs.push_back(*sha.GetJob());
  // Rung incomplete, but the Falkner scheme starts a second bracket rather
  // than idling the worker.
  const auto job = sha.GetJob();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->rung, 0);
  EXPECT_EQ(sha.NumBracketInstances(), 2u);
  EXPECT_NE(job->tag, jobs[0].tag);
  EXPECT_FALSE(sha.Finished());  // never finishes in spawn mode
}

TEST(Sha, ResultsRouteToCorrectBracketInstance) {
  auto options = ToyOptions();
  options.spawn_new_brackets = true;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  std::vector<Job> first_bracket;
  for (int i = 0; i < 9; ++i) first_bracket.push_back(*sha.GetJob());
  std::vector<Job> second_bracket;
  for (int i = 0; i < 9; ++i) second_bracket.push_back(*sha.GetJob());
  // Settle the *second* bracket's rung 0 first.
  for (const auto& job : second_bracket) sha.ReportResult(job, 0.5);
  const auto promotion = *sha.GetJob();
  EXPECT_EQ(promotion.rung, 1);
  EXPECT_EQ(promotion.tag, second_bracket[0].tag);
}

TEST(Sha, ResumeAffectsPromotionCost) {
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), ToyOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) jobs.push_back(*sha.GetJob());
  for (int i = 0; i < 9; ++i) sha.ReportResult(jobs[i], 0.1 * (i + 1));
  const auto promotion = *sha.GetJob();
  EXPECT_DOUBLE_EQ(promotion.from_resource, 1);
  EXPECT_DOUBLE_EQ(promotion.to_resource, 3);
}

TEST(Sha, DisplayNameOverride) {
  auto options = ToyOptions();
  options.display_name = "BOHB";
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  EXPECT_EQ(sha.name(), "BOHB");
}

TEST(Sha, Section41GeometrySanity) {
  ShaOptions options;
  options.n = 256;
  options.r = 30000.0 / 256;
  options.R = 30000;
  options.eta = 4;
  options.spawn_new_brackets = false;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  int rung0_jobs = 0;
  while (auto job = sha.GetJob()) {
    ++rung0_jobs;
    EXPECT_EQ(job->rung, 0);
  }
  EXPECT_EQ(rung0_jobs, 256);
}

}  // namespace
}  // namespace hypertune
