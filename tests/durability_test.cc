// Durability: the write-ahead journal's framing contract (torn tails and
// bit rot are truncated, never parsed or fatal) and the DurableServer's
// recovery contract (snapshot + journal replay reconstructs the exact
// pre-crash server, byte-for-byte in its decisions).
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/asha.h"
#include "durability/durable_server.h"
#include "durability/wal.h"
#include "fault/fault_fs.h"
#include "service/server.h"

namespace hypertune {
namespace {

std::string TempPath(const std::string& name) {
  const auto dir =
      std::filesystem::path(testing::TempDir()) / "ht_durability";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---------------------------------------------------------------------------
// Journal framing.

TEST(Wal, RoundTripsPayloads) {
  const std::string path = TempPath("roundtrip.log");
  const std::vector<std::string> payloads = {
      R"({"kind":"grant","job_id":1})", "", "x",
      std::string(5000, 'y'),  // bigger than any one write buffer quirk
  };
  {
    auto writer = JournalWriter::Create(path, {SyncPolicy::kAlways, 1});
    for (const auto& payload : payloads) writer.Append(payload);
    EXPECT_EQ(writer.frames_written(), payloads.size());
  }
  const JournalReadResult result = ReadJournal(path);
  EXPECT_EQ(result.payloads, payloads);
  EXPECT_FALSE(result.truncated_tail);
  EXPECT_EQ(result.valid_bytes, std::filesystem::file_size(path));
}

TEST(Wal, EmptyJournalIsValid) {
  const std::string path = TempPath("empty.log");
  { auto writer = JournalWriter::Create(path, {}); }
  const JournalReadResult result = ReadJournal(path);
  EXPECT_TRUE(result.payloads.empty());
  EXPECT_FALSE(result.truncated_tail);
  EXPECT_EQ(result.valid_bytes, JournalMagic().size());
}

TEST(Wal, TornTailIsTruncatedNotParsed) {
  const std::string path = TempPath("torn.log");
  {
    auto writer = JournalWriter::Create(path, {SyncPolicy::kNone, 0});
    writer.Append("first");
    writer.Append("second");
  }
  const auto valid_size = std::filesystem::file_size(path);
  // A crash mid-append: half a frame header, then nothing.
  std::string bytes = ReadRaw(path);
  bytes += std::string("\x09\x00", 2);
  WriteRaw(path, bytes);

  const JournalReadResult torn = ReadJournal(path);
  EXPECT_EQ(torn.payloads, (std::vector<std::string>{"first", "second"}));
  EXPECT_TRUE(torn.truncated_tail);
  EXPECT_EQ(torn.valid_bytes, valid_size);

  // Reopening for append truncates the tail and keeps going.
  {
    auto writer = JournalWriter::Append(path, {}, torn.valid_bytes);
    writer.Append("third");
  }
  const JournalReadResult healed = ReadJournal(path);
  EXPECT_EQ(healed.payloads,
            (std::vector<std::string>{"first", "second", "third"}));
  EXPECT_FALSE(healed.truncated_tail);
}

TEST(Wal, TornPayloadIsTruncated) {
  const std::string path = TempPath("torn_payload.log");
  {
    auto writer = JournalWriter::Create(path, {});
    writer.Append("keep");
  }
  // A full header promising 100 bytes, followed by only 3.
  std::string bytes = ReadRaw(path);
  bytes += std::string("\x64\x00\x00\x00\xde\xad\xbe\xef", 8);
  bytes += "abc";
  WriteRaw(path, bytes);
  const JournalReadResult result = ReadJournal(path);
  EXPECT_EQ(result.payloads, (std::vector<std::string>{"keep"}));
  EXPECT_TRUE(result.truncated_tail);
}

TEST(Wal, CrcCorruptionStopsTheRead) {
  const std::string path = TempPath("corrupt.log");
  {
    auto writer = JournalWriter::Create(path, {});
    writer.Append("alpha");
    writer.Append("bravo");
    writer.Append("charlie");
  }
  // Flip one payload byte of the middle frame: everything from that frame
  // on is dead; everything before it survives.
  std::string bytes = ReadRaw(path);
  const std::size_t pos = bytes.find("bravo");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x01;
  WriteRaw(path, bytes);
  const JournalReadResult result = ReadJournal(path);
  EXPECT_EQ(result.payloads, (std::vector<std::string>{"alpha"}));
  EXPECT_TRUE(result.truncated_tail);
}

TEST(Wal, RejectsForeignFiles) {
  const std::string path = TempPath("foreign.bin");
  WriteRaw(path, "this is not a journal at all");
  EXPECT_THROW(ReadJournal(path), CheckError);
  EXPECT_THROW(ReadJournal(TempPath("missing.log")), CheckError);
}

// ---------------------------------------------------------------------------
// DurableServer recovery.

SearchSpace DurabilitySpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

AshaOptions DurabilityAsha() {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.max_trials = 60;
  options.seed = 5;
  return options;
}

Json RequestJob(std::uint64_t worker) {
  Json message = JsonObject{};
  message.Set("type", Json("request_job"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  return message;
}

Json Report(std::uint64_t worker, std::uint64_t job_id, double loss) {
  Json message = JsonObject{};
  message.Set("type", Json("report"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  message.Set("loss", Json(loss));
  return message;
}

std::string FreshStateDir(const std::string& name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

/// Drives `steps` request/report cycles at one message per virtual second;
/// returns the virtual time after the last message.
template <typename ServerLike>
double DriveCycles(ServerLike& server, int steps, double now) {
  for (int i = 0; i < steps; ++i) {
    const Json reply = server.HandleMessage(RequestJob(0), now);
    now += 1.0;
    if (reply.at("type").AsString() != "job") continue;
    const auto job_id =
        static_cast<std::uint64_t>(reply.at("job_id").AsInt());
    const double loss =
        0.1 + 0.001 * static_cast<double>(reply.at("job").at("trial").AsInt());
    server.HandleMessage(Report(0, job_id, loss), now);
    now += 1.0;
  }
  return now;
}

TEST(DurableServer, RecoversMidRunAndContinuesIdentically) {
  const std::string dir = FreshStateDir("recover_midrun");
  // Reference: an uninterrupted plain server fed the same messages.
  AshaScheduler ref_scheduler(MakeRandomSampler(DurabilitySpace()),
                              DurabilityAsha());
  TuningServer reference(ref_scheduler, ServerOptions{.lease_timeout = 1e6});
  double ref_now = DriveCycles(reference, 40, 0);

  double now = 0;
  {
    AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                            DurabilityAsha());
    DurableServer durable(scheduler, ServerOptions{.lease_timeout = 1e6},
                          DurabilityOptions{.dir = dir});
    EXPECT_FALSE(durable.recovered());
    now = DriveCycles(durable, 15, now);
    // The server "crashes" here: everything in memory dies with this scope.
  }
  AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                          DurabilityAsha());
  DurableServer durable(scheduler, ServerOptions{.lease_timeout = 1e6},
                        DurabilityOptions{.dir = dir});
  EXPECT_TRUE(durable.recovered());
  EXPECT_GT(durable.replayed_events(), 0u);
  now = DriveCycles(durable, 25, now);

  ASSERT_EQ(durable.server().run_records().size(),
            reference.run_records().size());
  for (std::size_t i = 0; i < reference.run_records().size(); ++i) {
    const RunRecord& a = reference.run_records()[i];
    const RunRecord& b = durable.server().run_records()[i];
    EXPECT_EQ(a.trial_id, b.trial_id) << "record " << i;
    EXPECT_EQ(a.rung, b.rung) << "record " << i;
    EXPECT_EQ(a.loss, b.loss) << "record " << i;
    EXPECT_EQ(a.lease_id, b.lease_id) << "record " << i;
  }
  EXPECT_EQ(durable.server().stats().jobs_completed,
            reference.stats().jobs_completed);
  ASSERT_TRUE(durable.server().Current().has_value());
  EXPECT_EQ(durable.server().Current()->trial_id,
            reference.Current()->trial_id);
  (void)ref_now;
}

TEST(DurableServer, SnapshotsCompactTheJournalAndPruneOldGenerations) {
  const std::string dir = FreshStateDir("compaction");
  AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                          DurabilityAsha());
  DurableServer durable(
      scheduler, ServerOptions{.lease_timeout = 1e6},
      DurabilityOptions{.dir = dir, .snapshot_every = 8});
  DriveCycles(durable, 30, 0);
  EXPECT_GT(durable.generation(), 1u);
  // Only the live generation's files remain on disk.
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), "-%06llu",
                static_cast<unsigned long long>(durable.generation()));
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_NE(name.find(suffix), std::string::npos) << "stale file " << name;
    ++files;
  }
  EXPECT_EQ(files, 2u);  // snapshot + wal of the live generation
}

TEST(DurableServer, RecoversThroughSnapshotPlusJournalTail) {
  const std::string dir = FreshStateDir("snapshot_tail");
  AshaScheduler ref_scheduler(MakeRandomSampler(DurabilitySpace()),
                              DurabilityAsha());
  TuningServer reference(ref_scheduler, ServerOptions{.lease_timeout = 1e6});
  DriveCycles(reference, 40, 0);

  double now = 0;
  std::uint64_t generation = 0;
  {
    AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                            DurabilityAsha());
    DurableServer durable(
        scheduler, ServerOptions{.lease_timeout = 1e6},
        DurabilityOptions{.dir = dir, .snapshot_every = 8});
    now = DriveCycles(durable, 25, now);
    generation = durable.generation();
    EXPECT_GT(generation, 0u);  // the crash lands past a snapshot
  }
  AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                          DurabilityAsha());
  DurableServer durable(
      scheduler, ServerOptions{.lease_timeout = 1e6},
      DurabilityOptions{.dir = dir, .snapshot_every = 8});
  EXPECT_TRUE(durable.recovered());
  EXPECT_EQ(durable.generation(), generation);
  now = DriveCycles(durable, 15, now);
  ASSERT_EQ(durable.server().run_records().size(),
            reference.run_records().size());
  EXPECT_EQ(durable.server().Current()->trial_id,
            reference.Current()->trial_id);
}

TEST(DurableServer, TruncatesTornJournalTailOnRecovery) {
  const std::string dir = FreshStateDir("torn_recovery");
  double now = 0;
  {
    AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                            DurabilityAsha());
    DurableServer durable(scheduler, ServerOptions{.lease_timeout = 1e6},
                          DurabilityOptions{.dir = dir});
    now = DriveCycles(durable, 10, now);
  }
  // Smash a torn frame onto the journal tail — the crash happened mid-write.
  const std::string wal = (std::filesystem::path(dir) / "wal-000000.log").string();
  ASSERT_TRUE(std::filesystem::exists(wal));
  {
    std::ofstream out(wal, std::ios::binary | std::ios::app);
    out << std::string("\xff\xff\x00\x00garbage", 11);
  }
  AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                          DurabilityAsha());
  DurableServer durable(scheduler, ServerOptions{.lease_timeout = 1e6},
                        DurabilityOptions{.dir = dir});
  EXPECT_TRUE(durable.recovered());
  EXPECT_TRUE(durable.journal_tail_truncated());
  // The journal is healed: appending and re-recovering works.
  now = DriveCycles(durable, 5, now);
  EXPECT_GT(durable.server().stats().jobs_completed, 0u);
}

TEST(DurableServer, ExpiredLeasesAreJournaledAndReplayed) {
  const std::string dir = FreshStateDir("expiry_replay");
  double now = 0;
  std::size_t expired_before = 0;
  {
    AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                            DurabilityAsha());
    DurableServer durable(scheduler, ServerOptions{.lease_timeout = 5},
                          DurabilityOptions{.dir = dir});
    // Lease a job and let it rot: the worker never reports.
    durable.HandleMessage(RequestJob(0), now);
    now += 100;
    durable.Tick(now);
    expired_before = durable.server().stats().leases_expired;
    EXPECT_EQ(expired_before, 1u);
  }
  AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                          DurabilityAsha());
  DurableServer durable(scheduler, ServerOptions{.lease_timeout = 5},
                        DurabilityOptions{.dir = dir});
  EXPECT_TRUE(durable.recovered());
  EXPECT_EQ(durable.server().stats().leases_expired, expired_before);
  ASSERT_EQ(durable.server().run_records().size(), 1u);
  EXPECT_TRUE(durable.server().run_records()[0].lost);
}

TEST(DurableServer, RefusesForeignStateDirGracefully) {
  const std::string dir = FreshStateDir("foreign_state");
  std::filesystem::create_directories(dir);
  WriteRaw((std::filesystem::path(dir) / "wal-000000.log").string(),
           "not a journal");
  AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                          DurabilityAsha());
  EXPECT_THROW(DurableServer(scheduler, ServerOptions{.lease_timeout = 1e6},
                             DurabilityOptions{.dir = dir}),
               CheckError);
}

// ---------------------------------------------------------------------------
// Fault injection: the journal's failure reporting and the DurableServer's
// degraded read-only mode.

/// FileOps whose failures the test arms and disarms mid-run — the unit-test
/// counterpart of the chaos harness's op-indexed FaultFs windows.
class SwitchableOps final : public FileOps {
 public:
  bool fail_writes = false;
  bool fail_fsyncs = false;
  bool fail_renames = false;

  ssize_t Write(int fd, const void* data, std::size_t size) override {
    if (fail_writes) {
      errno = ENOSPC;
      return -1;
    }
    return FileOps::Real().Write(fd, data, size);
  }
  int Fsync(int fd) override {
    if (fail_fsyncs) {
      errno = EIO;
      return -1;
    }
    return FileOps::Real().Fsync(fd);
  }
  int Rename(const char* from, const char* to) override {
    if (fail_renames) {
      errno = ENOSPC;
      return -1;
    }
    return FileOps::Real().Rename(from, to);
  }
  int Truncate(int fd, off_t length) override {
    return FileOps::Real().Truncate(fd, length);
  }
};

TEST(WalFault, EveryNFsyncFailureIsReportedNotIgnored) {
  // Regression: the kEveryN path used to discard ::fsync's return value, so
  // a dying disk degraded the policy to "never sync" silently. Now the
  // failure surfaces as kSyncFailed with the errno preserved.
  const std::string path = TempPath("fsync_fail.log");
  FaultFs fs({{.begin = 0,
               .count = 100,
               .error = EIO,
               .fail_writes = false,
               .fail_fsyncs = true,
               .fail_renames = false,
               .fail_truncates = false}});
  auto writer =
      JournalWriter::TryCreate(path, {SyncPolicy::kEveryN, 2, &fs});
  ASSERT_TRUE(writer.has_value());
  EXPECT_EQ(writer->TryAppend("first"), AppendResult::kOk);  // fsync not due
  EXPECT_EQ(writer->TryAppend("second"), AppendResult::kSyncFailed);
  EXPECT_EQ(writer->last_errno(), EIO);
  EXPECT_FALSE(writer->TrySync());
  writer.reset();  // destructor's best-effort sync also fails; no throw
  // Both frames' bytes reached the file — it was durability, not the
  // write, that failed — so a reader sees them (and must not get them
  // appended twice by any retry).
  const JournalReadResult result = ReadJournal(path);
  EXPECT_EQ(result.payloads, (std::vector<std::string>{"first", "second"}));
}

TEST(WalFault, PartialFrameWriteIsRepairedBeforeTheNextAppend) {
  // A frame torn by ENOSPC mid-write leaves a dirty tail; the next append
  // must truncate it away so later frames never sit behind garbage.
  class PartialThenFailOps final : public FileOps {
   public:
    ssize_t Write(int fd, const void* data, std::size_t size) override {
      const std::size_t index = writes_++;
      if (index == 2) {  // first half of the doomed frame
        return FileOps::Real().Write(fd, data, size > 1 ? size / 2 : size);
      }
      if (index == 3) {  // the rest never lands
        errno = ENOSPC;
        return -1;
      }
      return FileOps::Real().Write(fd, data, size);
    }
    int Fsync(int fd) override { return FileOps::Real().Fsync(fd); }
    int Rename(const char* from, const char* to) override {
      return FileOps::Real().Rename(from, to);
    }
    int Truncate(int fd, off_t length) override {
      ++truncates_;
      return FileOps::Real().Truncate(fd, length);
    }
    std::size_t truncates() const { return truncates_; }

   private:
    std::size_t writes_ = 0;  // op 0 is the header, op 1 the first frame
    std::size_t truncates_ = 0;
  };

  const std::string path = TempPath("partial_frame.log");
  PartialThenFailOps ops;
  auto writer =
      JournalWriter::TryCreate(path, {SyncPolicy::kNone, 0, &ops});
  ASSERT_TRUE(writer.has_value());
  EXPECT_EQ(writer->TryAppend("first"), AppendResult::kOk);
  EXPECT_EQ(writer->TryAppend("second"), AppendResult::kWriteFailed);
  EXPECT_EQ(writer->last_errno(), ENOSPC);
  // The repair truncates the torn half-frame before appending "third".
  EXPECT_EQ(writer->TryAppend("third"), AppendResult::kOk);
  EXPECT_GE(ops.truncates(), 1u);
  writer.reset();
  const JournalReadResult result = ReadJournal(path);
  EXPECT_EQ(result.payloads, (std::vector<std::string>{"first", "third"}));
  EXPECT_FALSE(result.truncated_tail);  // repaired, not merely detected
}

TEST(DurableServerDegraded, EnospcBuffersRecordsAndResumesLosslessly) {
  const std::string dir = FreshStateDir("degraded_enospc");
  SwitchableOps ops;
  std::vector<RunRecord> live_records;
  double now = 0;
  {
    AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                            DurabilityAsha());
    DurableServer durable(scheduler, ServerOptions{.lease_timeout = 1e6},
                          DurabilityOptions{.dir = dir,
                                            .sync = SyncPolicy::kAlways,
                                            .file_ops = &ops});
    now = DriveCycles(durable, 5, now);

    // The disk fills. The message that trips the failure is still applied
    // (apply-then-log), its record buffered, and the mode entered.
    ops.fail_writes = true;
    const Json tripped = durable.HandleMessage(RequestJob(0), now);
    now += 1.0;
    ASSERT_EQ(tripped.at("type").AsString(), "job");
    EXPECT_TRUE(durable.degraded());
    EXPECT_EQ(durable.buffered_records(), 1u);

    // Read-only: new grants are denied with a retry hint...
    const Json denied = durable.HandleMessage(RequestJob(0), now);
    now += 1.0;
    EXPECT_EQ(denied.at("type").AsString(), "no_job");
    EXPECT_TRUE(denied.at("degraded").AsBool());
    EXPECT_EQ(denied.at("retry_after").AsDouble(), 5.0);

    // ...but the report for the in-flight job is absorbed and buffered.
    const auto job_id =
        static_cast<std::uint64_t>(tripped.at("job_id").AsInt());
    const Json ack = durable.HandleMessage(Report(0, job_id, 0.42), now);
    now += 1.0;
    EXPECT_EQ(ack.at("type").AsString(), "ack");
    EXPECT_EQ(durable.buffered_records(), 2u);

    const DurabilityStats mid = durable.durability_stats();
    EXPECT_EQ(mid.degraded_entered, 1u);
    EXPECT_EQ(mid.degraded_exited, 0u);
    EXPECT_GE(mid.journal_write_failures, 1u);
    EXPECT_GE(mid.grants_denied, 1u);
    EXPECT_EQ(mid.records_buffered, 2u);

    // Space returns: the next message re-appends the buffer in order,
    // fsyncs, exits the mode, and grants flow again.
    ops.fail_writes = false;
    const Json granted = durable.HandleMessage(RequestJob(0), now);
    now += 1.0;
    EXPECT_EQ(granted.at("type").AsString(), "job");
    EXPECT_FALSE(durable.degraded());
    EXPECT_EQ(durable.buffered_records(), 0u);
    EXPECT_EQ(durable.durability_stats().degraded_exited, 1u);
    durable.HandleMessage(
        Report(0, static_cast<std::uint64_t>(granted.at("job_id").AsInt()),
               0.43),
        now);
    now += 1.0;
    now = DriveCycles(durable, 3, now);
    live_records = durable.server().run_records();
  }

  // Recovery replays the buffered-then-flushed records: the blip cost the
  // study nothing.
  AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                          DurabilityAsha());
  DurableServer recovered(scheduler, ServerOptions{.lease_timeout = 1e6},
                          DurabilityOptions{.dir = dir});
  EXPECT_TRUE(recovered.recovered());
  ASSERT_EQ(recovered.server().run_records().size(), live_records.size());
  for (std::size_t i = 0; i < live_records.size(); ++i) {
    EXPECT_EQ(recovered.server().run_records()[i].trial_id,
              live_records[i].trial_id)
        << "record " << i;
    EXPECT_EQ(recovered.server().run_records()[i].loss, live_records[i].loss)
        << "record " << i;
  }
}

TEST(DurableServerDegraded, FsyncFailureDegradesWithoutDuplicatingRecords) {
  const std::string dir = FreshStateDir("degraded_fsync");
  SwitchableOps ops;
  std::size_t live_count = 0;
  double now = 0;
  {
    AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                            DurabilityAsha());
    DurableServer durable(scheduler, ServerOptions{.lease_timeout = 1e6},
                          DurabilityOptions{.dir = dir,
                                            .sync = SyncPolicy::kAlways,
                                            .file_ops = &ops});
    now = DriveCycles(durable, 3, now);

    // The device starts failing fsync: bytes append, durability doesn't.
    // The record must NOT be buffered — its frame is already in the file,
    // and re-appending it would duplicate the event on replay.
    ops.fail_fsyncs = true;
    const Json tripped = durable.HandleMessage(RequestJob(0), now);
    now += 1.0;
    ASSERT_EQ(tripped.at("type").AsString(), "job");
    EXPECT_TRUE(durable.degraded());
    EXPECT_EQ(durable.buffered_records(), 0u);
    EXPECT_GE(durable.durability_stats().journal_sync_failures, 1u);
    const Json denied = durable.HandleMessage(RequestJob(0), now);
    now += 1.0;
    EXPECT_EQ(denied.at("type").AsString(), "no_job");

    // fsync recovers; the probe syncs the appended tail and exits.
    ops.fail_fsyncs = false;
    const Json granted = durable.HandleMessage(RequestJob(0), now);
    now += 1.0;
    EXPECT_EQ(granted.at("type").AsString(), "job");
    EXPECT_FALSE(durable.degraded());
    now = DriveCycles(durable, 3, now);
    live_count = durable.server().run_records().size();
  }
  AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                          DurabilityAsha());
  DurableServer recovered(scheduler, ServerOptions{.lease_timeout = 1e6},
                          DurabilityOptions{.dir = dir});
  EXPECT_TRUE(recovered.recovered());
  // Exactly the live record count: the sync-failed frame exists once.
  EXPECT_EQ(recovered.server().run_records().size(), live_count);
}

TEST(DurableServerDegraded, SnapshotFailureIsSoftAndRetried) {
  const std::string dir = FreshStateDir("degraded_snapshot");
  SwitchableOps ops;
  AshaScheduler scheduler(MakeRandomSampler(DurabilitySpace()),
                          DurabilityAsha());
  DurableServer durable(scheduler, ServerOptions{.lease_timeout = 1e6},
                        DurabilityOptions{.dir = dir,
                                          .sync = SyncPolicy::kAlways,
                                          .snapshot_every = 6,
                                          .file_ops = &ops});
  // Every snapshot boundary fails at the atomic rename; journaling and
  // serving continue — the current generation still recovers everything.
  ops.fail_renames = true;
  double now = DriveCycles(durable, 6, 0);
  EXPECT_EQ(durable.generation(), 0u);
  EXPECT_GE(durable.durability_stats().snapshot_failures, 1u);
  EXPECT_FALSE(durable.degraded());
  EXPECT_GT(durable.server().stats().jobs_completed, 0u);

  // The next boundary after the disk heals compacts as usual.
  ops.fail_renames = false;
  DriveCycles(durable, 4, now);
  EXPECT_GE(durable.generation(), 1u);
}

}  // namespace
}  // namespace hypertune
