// Edge cases and cross-cutting behaviours not covered by the per-module
// suites: degenerate bracket geometries, incumbent-policy orderings,
// GP subsampling paths, PBT population isolation.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/pbt.h"
#include "baselines/vizier.h"
#include "common/check.h"
#include "core/asha.h"
#include "core/geometry.h"
#include "core/random_search.h"
#include "core/sha.h"
#include "sim/driver.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

class RankEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    (void)resource;
    return config.GetDouble("x");
  }
  double Duration(const Configuration&, Resource from, Resource to) override {
    return to - from;
  }
};

TEST(EdgeCases, SingleRungBracketWhenREqualsR0) {
  // r == R: s_max = 0, one rung; ASHA never promotes, every job trains the
  // full resource directly.
  AshaOptions options;
  options.r = 8;
  options.R = 8;
  options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  for (int i = 0; i < 10; ++i) {
    const auto job = *asha.GetJob();
    EXPECT_EQ(job.rung, 0);
    EXPECT_DOUBLE_EQ(job.to_resource, 8);
    asha.ReportResult(job, 0.1 * i);
    EXPECT_EQ(asha.trials().Get(job.trial_id).status,
              TrialStatus::kCompleted);
  }
  EXPECT_EQ(asha.NumRungs(), 1u);
}

TEST(EdgeCases, NonPowerResourceRatioCapsTopRungAtR) {
  // R/r = 10 with eta=3: rungs at 1, 3, and exactly 10 (not 9).
  AshaOptions options;
  options.r = 1;
  options.R = 10;
  options.eta = 3;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  EXPECT_DOUBLE_EQ(asha.RungResource(0), 1);
  EXPECT_DOUBLE_EQ(asha.RungResource(1), 3);
  EXPECT_DOUBLE_EQ(asha.RungResource(2), 10);
}

TEST(EdgeCases, ShaSmallestValidBracket) {
  // n = eta^(s_max): exactly one configuration survives to the top.
  ShaOptions options;
  options.n = 4;
  options.r = 1;
  options.R = 4;
  options.eta = 2;
  options.spawn_new_brackets = false;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  RankEnv env;
  DriverOptions driver_options;
  driver_options.num_workers = 4;
  SimulationDriver driver(sha, env, driver_options);
  const auto result = driver.Run();
  EXPECT_TRUE(sha.Finished());
  EXPECT_EQ(result.jobs_completed, 4u + 2u + 1u);
}

TEST(EdgeCases, IncumbentPolicyOrderingOnIdenticalRuns) {
  // Same seed, three accounting policies: the first recommendation arrives
  // intermediate <= by-rung <= by-bracket, and the final recommendation is
  // identical.
  auto first_rec_time = [](IncumbentPolicy policy, double* final_loss) {
    ShaOptions options;
    options.n = 16;
    options.r = 1;
    options.R = 16;
    options.eta = 4;
    options.seed = 77;
    options.spawn_new_brackets = false;
    options.incumbent_policy = policy;
    SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
    RankEnv env;
    DriverOptions driver_options;
    driver_options.num_workers = 2;
    SimulationDriver driver(sha, env, driver_options);
    const auto result = driver.Run();
    *final_loss = sha.Current() ? sha.Current()->loss : -1;
    return result.recommendations.empty()
               ? 1e18
               : result.recommendations.front().time;
  };
  double final_intermediate = 0, final_rung = 0, final_bracket = 0;
  const double t_intermediate =
      first_rec_time(IncumbentPolicy::kIntermediate, &final_intermediate);
  const double t_rung = first_rec_time(IncumbentPolicy::kByRung, &final_rung);
  const double t_bracket =
      first_rec_time(IncumbentPolicy::kByBracket, &final_bracket);
  EXPECT_LE(t_intermediate, t_rung);
  EXPECT_LE(t_rung, t_bracket);
  // All policies converge to the same final recommendation on completion.
  EXPECT_DOUBLE_EQ(final_rung, final_bracket);
}

TEST(EdgeCases, VizierSubsamplingKeepsWorkingPastCap) {
  VizierOptions options;
  options.R = 1;
  options.num_initial_random = 5;
  options.refit_every = 3;
  options.max_gp_points = 10;  // force the best+recent subsampling path
  options.candidates_per_suggest = 16;
  VizierScheduler vizier(UnitSpace(), options);
  Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    const auto job = *vizier.GetJob();
    vizier.ReportResult(job, job.config.GetDouble("x"));
  }
  EXPECT_EQ(vizier.NumCompleted(), 60u);
  ASSERT_TRUE(vizier.Current().has_value());
  EXPECT_LT(vizier.Current()->loss, 0.2);
}

TEST(EdgeCases, PbtPopulationsAreIsolated) {
  // Exploits must pick donors within the member's own population.
  PbtOptions options;
  options.population_size = 2;
  options.step_resource = 10;
  options.max_resource = 100;
  options.sync_window = 100;
  options.truncation_fraction = 0.5;
  options.spawn_new_populations = true;
  PbtScheduler pbt(UnitSpace(), options);
  // Start two populations.
  const auto a0 = *pbt.GetJob();
  const auto a1 = *pbt.GetJob();
  const auto b0 = *pbt.GetJob();
  const auto b1 = *pbt.GetJob();
  EXPECT_EQ(pbt.NumPopulations(), 2u);
  EXPECT_EQ(a0.bracket, 0);
  EXPECT_EQ(b0.bracket, 1);
  // Population 1's donors must come from population 1: make population 0
  // excellent and population 1's first member bad; its exploit (if any) can
  // only copy from the other population-1 member.
  pbt.ReportResult(a0, 0.01);
  pbt.ReportResult(a1, 0.02);
  pbt.ReportResult(b0, 0.5);
  const auto trials_before = pbt.trials().size();
  pbt.ReportResult(b1, 0.9);  // bottom of population 1 -> exploit b0
  if (pbt.trials().size() > trials_before) {
    const auto& new_trial =
        pbt.trials().Get(static_cast<TrialId>(pbt.trials().size() - 1));
    EXPECT_EQ(new_trial.bracket, 1);       // stayed in population 1
    EXPECT_DOUBLE_EQ(new_trial.resource_trained, 10);
  }
}

TEST(EdgeCases, AshaRejectsInvalidGeometry) {
  AshaOptions options;
  options.r = 10;
  options.R = 5;  // r > R
  EXPECT_THROW(AshaScheduler(MakeRandomSampler(UnitSpace()), options),
               CheckError);
  options = {};
  options.eta = 1.5;
  EXPECT_THROW(AshaScheduler(MakeRandomSampler(UnitSpace()), options),
               CheckError);
}

TEST(EdgeCases, DriverHandlesSchedulerWithNoWork) {
  // A scheduler that immediately has nothing: the driver must terminate.
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = 0;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  RankEnv env;
  SimulationDriver driver(scheduler, env, DriverOptions{});
  const auto result = driver.Run();
  EXPECT_EQ(result.jobs_completed, 0u);
  EXPECT_DOUBLE_EQ(result.end_time, 0.0);
}

}  // namespace
}  // namespace hypertune
