#include "analysis/export.h"

#include <gtest/gtest.h>

#include <fstream>

#include "analysis/trajectory.h"
#include "common/check.h"
#include "core/asha.h"
#include "sim/driver.h"
#include "surrogate/benchmarks.h"

namespace hypertune {
namespace {

Configuration SampleConfig() {
  Configuration config;
  config.Set("lr", ParamValue{0.015625});
  config.Set("layers", ParamValue{std::int64_t{3}});
  config.Set("activation", ParamValue{std::string{"relu"}});
  return config;
}

TEST(Export, ConfigurationRoundTripPreservesTypes) {
  const auto config = SampleConfig();
  const auto back = ConfigurationFromJson(ToJson(config));
  EXPECT_EQ(back, config);
  // Types preserved exactly.
  EXPECT_NO_THROW(back.GetDouble("lr"));
  EXPECT_NO_THROW(back.GetInt("layers"));
  EXPECT_NO_THROW(back.GetString("activation"));
}

TEST(Export, ConfigurationRejectsNonScalarValues) {
  Json bad = JsonObject{};
  bad.Set("x", Json(JsonArray{Json(1)}));
  EXPECT_THROW(ConfigurationFromJson(bad), CheckError);
}

TEST(Export, TrialToJsonCarriesObservations) {
  Trial trial;
  trial.id = 4;
  trial.config = SampleConfig();
  trial.bracket = 1;
  trial.status = TrialStatus::kPaused;
  trial.observations = {{10, 0.5}, {40, 0.3}};
  trial.resource_trained = 40;
  const Json json = ToJson(trial);
  EXPECT_EQ(json.at("id").AsInt(), 4);
  EXPECT_EQ(json.at("status").AsString(), "paused");
  EXPECT_EQ(json.at("observations").size(), 2u);
  EXPECT_DOUBLE_EQ(
      json.at("observations").at(std::size_t{1}).at("loss").AsDouble(), 0.3);
}

TEST(Export, DriverResultRoundTrip) {
  // Run a real small tuning job and round-trip its result through JSON.
  auto bench = benchmarks::UnitTime(1);
  AshaOptions options;
  options.r = 1;
  options.R = 16;
  options.eta = 4;
  options.max_trials = 20;
  AshaScheduler asha(MakeRandomSampler(bench->space()), options);
  DriverOptions driver_options;
  driver_options.num_workers = 4;
  driver_options.hazards.drop_probability = 0.01;
  SimulationDriver driver(asha, *bench, driver_options);
  const DriverResult original = driver.Run();

  const DriverResult back =
      DriverResultFromJson(Json::Parse(ToJson(original).Dump()));
  ASSERT_EQ(back.completions.size(), original.completions.size());
  for (std::size_t i = 0; i < back.completions.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.completions[i].end_time, original.completions[i].end_time);
    EXPECT_EQ(back.completions[i].trial_id, original.completions[i].trial_id);
    EXPECT_EQ(back.completions[i].lost, original.completions[i].lost);
    EXPECT_DOUBLE_EQ(back.completions[i].loss, original.completions[i].loss);
  }
  ASSERT_EQ(back.recommendations.size(), original.recommendations.size());
  EXPECT_DOUBLE_EQ(back.end_time, original.end_time);
  EXPECT_EQ(back.jobs_completed, original.jobs_completed);
  EXPECT_EQ(back.jobs_dropped, original.jobs_dropped);
}

TEST(Export, TrialBankSerializesEveryTrial) {
  auto bench = benchmarks::UnitTime(2);
  AshaOptions options;
  options.r = 1;
  options.R = 16;
  options.eta = 4;
  options.max_trials = 10;
  AshaScheduler asha(MakeRandomSampler(bench->space()), options);
  DriverOptions driver_options;
  SimulationDriver driver(asha, *bench, driver_options);
  (void)driver.Run();
  const Json json = ToJson(asha.trials());
  EXPECT_EQ(json.size(), asha.trials().size());
  // Every serialized trial's config re-parses into the original.
  for (std::size_t i = 0; i < json.size(); ++i) {
    const auto config = ConfigurationFromJson(json.at(i).at("config"));
    EXPECT_EQ(config, asha.trials().Get(static_cast<TrialId>(i)).config);
  }
}

TEST(Export, ExperimentFileIsValidJson) {
  MethodResult method;
  method.method = "ASHA";
  Trajectory trajectory;
  trajectory.Add(1, 0.5);
  method.trajectories.push_back(trajectory);
  method.series = Aggregate(method.trajectories, {1.0, 2.0});
  method.mean_trials_evaluated = 3;

  const std::string path =
      testing::TempDir() + "/ht_export_test/experiment.json";
  ASSERT_TRUE(ExportExperiment(path, "unit-test", {method}));

  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  const Json parsed = Json::Parse(content);
  EXPECT_EQ(parsed.at("name").AsString(), "unit-test");
  EXPECT_EQ(parsed.at("methods").size(), 1u);
  const auto& m = parsed.at("methods").at(std::size_t{0});
  EXPECT_EQ(m.at("method").AsString(), "ASHA");
  EXPECT_EQ(m.at("series").at("times").size(), 2u);
}

}  // namespace
}  // namespace hypertune
