// Tests for the extension components: power-law curve fitting, the
// learning-curve stopper, the Halton quasi-random sampler, and Spearman
// correlation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "baselines/lc_stop.h"
#include "bo/curve_fit.h"
#include "common/check.h"
#include "common/stats.h"
#include "core/quasirandom.h"
#include "sim/driver.h"

namespace hypertune {
namespace {

// ------------------------------------------------------------- curve fit

TEST(CurveFit, RecoversKnownPowerLaw) {
  // y = 0.2 + 0.5 * r^(-0.8)
  std::vector<std::pair<double, double>> points;
  for (double r : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    points.emplace_back(r, 0.2 + 0.5 * std::pow(r, -0.8));
  }
  const auto fit = FitPowerLaw(points);
  EXPECT_NEAR(fit.a, 0.2, 0.02);
  EXPECT_NEAR(fit.b, 0.5, 0.05);
  EXPECT_NEAR(fit.c, 0.8, 0.06);
  EXPECT_LT(fit.rss, 1e-4);
  EXPECT_NEAR(PredictPowerLaw(fit, 1e6), 0.2, 0.02);
}

TEST(CurveFit, ExtrapolationSeparatesGoodFromBad) {
  auto curve = [](double floor, double r) {
    return floor + 0.4 * std::pow(r, -0.6);
  };
  std::vector<std::pair<double, double>> good, bad;
  for (double r : {4.0, 8.0, 12.0}) {
    good.emplace_back(r, curve(0.1, r));
    bad.emplace_back(r, curve(0.3, r));
  }
  const double good_final = PredictPowerLaw(FitPowerLaw(good), 256);
  const double bad_final = PredictPowerLaw(FitPowerLaw(bad), 256);
  EXPECT_LT(good_final, 0.2);
  EXPECT_GT(bad_final, 0.25);
}

TEST(CurveFit, RisingLossesFallBackToFlatFit) {
  std::vector<std::pair<double, double>> points{{1, 0.2}, {2, 0.3}, {4, 0.4}};
  const auto fit = FitPowerLaw(points);
  // No decreasing power law matches; the flat fallback predicts ~the mean.
  EXPECT_NEAR(PredictPowerLaw(fit, 1000), 0.3, 0.15);
}

TEST(CurveFit, Validation) {
  std::vector<std::pair<double, double>> two{{1, 0.2}, {2, 0.1}};
  EXPECT_THROW(FitPowerLaw(two), CheckError);
  std::vector<std::pair<double, double>> negative{{0, 0.2}, {1, 0.1}, {2, 0.05}};
  EXPECT_THROW(FitPowerLaw(negative), CheckError);
}

// ---------------------------------------------------------------- LCStop

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

class PowerLawEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    const double floor = config.GetDouble("x");
    return floor + 0.5 * std::pow(resource, -0.7);
  }
  double Duration(const Configuration&, Resource from, Resource to) override {
    return to - from;
  }
};

TEST(LcStop, PrunesBadTrialsAndKeepsIncumbentSane) {
  LcStopOptions options;
  options.R = 256;
  options.step_resource = 16;
  options.min_observations = 3;
  options.margin = 0.1;
  LcStopScheduler tuner(MakeRandomSampler(UnitSpace()), options);
  PowerLawEnv env;
  DriverOptions driver_options;
  driver_options.num_workers = 4;
  driver_options.time_limit = 20000;
  SimulationDriver driver(tuner, env, driver_options);
  const auto result = driver.Run();
  EXPECT_GT(result.jobs_completed, 200u);
  EXPECT_GT(tuner.NumStopped(), 5u);
  ASSERT_TRUE(tuner.Current().has_value());
  // The incumbent's floor must be small (extrapolation found good configs).
  const auto& best = tuner.trials().Get(tuner.Current()->trial_id).config;
  EXPECT_LT(best.GetDouble("x"), 0.3);
  // Stopped trials never consumed the full budget.
  for (const auto& trial : tuner.trials()) {
    if (trial.status == TrialStatus::kStopped) {
      EXPECT_LT(trial.resource_trained, options.R);
    }
  }
}

TEST(LcStop, NoPruningBeforeFirstCompletion) {
  LcStopOptions options;
  options.R = 64;
  options.step_resource = 16;
  LcStopScheduler tuner(MakeRandomSampler(UnitSpace()), options);
  // Interleave two trials; neither completes -> neither may be stopped.
  const auto j0 = *tuner.GetJob();
  tuner.ReportResult(j0, 0.9);
  const auto j1 = *tuner.GetJob();  // resume of trial 0 (priority)
  tuner.ReportResult(j1, 0.85);
  const auto j2 = *tuner.GetJob();
  tuner.ReportResult(j2, 0.84);
  EXPECT_EQ(tuner.NumStopped(), 0u);
}

// ---------------------------------------------------------------- Halton

TEST(Halton, RadicalInverseKnownValues) {
  EXPECT_DOUBLE_EQ(HaltonSampler::RadicalInverse(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(HaltonSampler::RadicalInverse(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(HaltonSampler::RadicalInverse(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(HaltonSampler::RadicalInverse(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(HaltonSampler::RadicalInverse(1, 3), 1.0 / 3);
  EXPECT_DOUBLE_EQ(HaltonSampler::RadicalInverse(2, 3), 2.0 / 3);
}

TEST(Halton, SamplesInSpaceAndDeterministic) {
  SearchSpace space;
  space.Add("a", Domain::Continuous(0.0, 1.0))
      .Add("b", Domain::Integer(1, 100));
  HaltonSampler s1(space), s2(space);
  Rng r1(5), r2(5);
  for (int i = 0; i < 100; ++i) {
    const auto c1 = s1.Sample(r1);
    const auto c2 = s2.Sample(r2);
    EXPECT_TRUE(space.Contains(c1));
    EXPECT_EQ(c1, c2);  // same seed -> same sequence
  }
}

TEST(Halton, LowerDiscrepancyThanUniform) {
  // Count points in a 4x4 grid of cells: Halton's max cell count should be
  // closer to the expected n/16 than uniform's.
  SearchSpace space;
  space.Add("a", Domain::Continuous(0.0, 1.0))
      .Add("b", Domain::Continuous(0.0, 1.0));
  auto max_cell_count = [&](auto&& sample, int n) {
    std::vector<int> cells(16, 0);
    for (int i = 0; i < n; ++i) {
      const auto config = sample();
      const auto cell_x = std::min(3, static_cast<int>(config.GetDouble("a") * 4));
      const auto cell_y = std::min(3, static_cast<int>(config.GetDouble("b") * 4));
      ++cells[static_cast<std::size_t>(cell_y * 4 + cell_x)];
    }
    return *std::max_element(cells.begin(), cells.end());
  };
  const int n = 320;  // expected 20 per cell
  HaltonSampler halton(space);
  Rng hr(3);
  const int halton_max = max_cell_count([&] { return halton.Sample(hr); }, n);
  Rng ur(3);
  const int uniform_max =
      max_cell_count([&] { return space.Sample(ur); }, n);
  EXPECT_LE(halton_max, uniform_max);
  EXPECT_LE(halton_max, 26);  // tight around the expectation of 20
}

TEST(Halton, RejectsTooManyDimensions) {
  SearchSpace space;
  for (int i = 0; i < 21; ++i) {
    space.Add("p" + std::to_string(i), Domain::Continuous(0, 1));
  }
  EXPECT_THROW(HaltonSampler{space}, CheckError);
}

// --------------------------------------------------------------- Spearman

TEST(Spearman, PerfectMonotoneRelations) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> up{10, 20, 30, 40, 50};
  const std::vector<double> down{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(xs, up), 1.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(xs, down), -1.0);
  // Nonlinear but monotone: still 1.
  const std::vector<double> exp_y{std::exp(1.0), std::exp(2.0), std::exp(3.0),
                                  std::exp(4.0), std::exp(5.0)};
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(xs, exp_y), 1.0);
}

TEST(Spearman, TiesGetAverageRanks) {
  const std::vector<double> xs{1, 2, 2, 3};
  const auto ranks = Ranks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Spearman, ConstantInputGivesZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> constant{5, 5, 5};
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(xs, constant), 0.0);
}

TEST(Spearman, IndependentSamplesNearZero) {
  Rng rng(11);
  std::vector<double> xs(2000), ys(2000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform();
    ys[i] = rng.Uniform();
  }
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 0.0, 0.06);
}

TEST(Spearman, Validation) {
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(SpearmanCorrelation(one, one), CheckError);
  EXPECT_THROW(SpearmanCorrelation(two, one), CheckError);
}

}  // namespace
}  // namespace hypertune
