// The fault-injection substrate (src/fault) and the contracts it exists to
// check: FaultyTransport replays a seeded schedule of short ops / EAGAIN
// bursts / corruption / disconnects over real sockets, FaultFs fails exact
// file ops with planned errnos, and — the resync satellite — FrameDecoder
// produces the identical frame/error sequence no matter where the socket
// splits the byte stream, including splits inside the 16-byte header and
// the CRC field.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/json.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "fault/fault_fs.h"
#include "net/codec.h"
#include "net/wire.h"

namespace hypertune {
namespace {

Json RequestJob(std::int64_t worker) {
  Json message = JsonObject{};
  message.Set("type", Json("request_job"));
  message.Set("worker", Json(worker));
  return message;
}

Json Report(std::int64_t worker, std::int64_t job_id, double loss) {
  Json message = JsonObject{};
  message.Set("type", Json("report"));
  message.Set("worker", Json(worker));
  message.Set("job_id", Json(job_id));
  message.Set("loss", Json(loss));
  return message;
}

// ---------------------------------------------------------------------------
// Codec resync: split-point invariance of FrameDecoder.

/// Everything a decoding pass observed, in order — two passes over the
/// same logical stream must compare equal no matter how it was chunked.
struct DecodeOutcome {
  std::vector<std::pair<WireType, std::string>> frames;
  std::vector<FrameError> recoverable;  // kBadCrc hits, in order
  bool poisoned = false;
  FrameError final_error = FrameError::kNone;

  bool operator==(const DecodeOutcome& other) const {
    return frames == other.frames && recoverable == other.recoverable &&
           poisoned == other.poisoned && final_error == other.final_error;
  }
};

/// Feeds `stream` to a fresh decoder in chunks cut at `splits` (sorted byte
/// offsets), draining frames and acknowledging recoverable errors after
/// every chunk — exactly the NetServer read loop's shape.
DecodeOutcome DecodeWithSplits(std::string_view stream,
                               const std::vector<std::size_t>& splits) {
  DecodeOutcome outcome;
  FrameDecoder decoder;
  const auto drain = [&] {
    for (;;) {
      while (auto frame = decoder.Next()) {
        outcome.frames.emplace_back(frame->type, std::move(frame->payload));
      }
      if (decoder.error() == FrameError::kBadCrc) {
        outcome.recoverable.push_back(decoder.error());
        decoder.ClearError();
        continue;  // resync: more frames may already be buffered
      }
      break;
    }
  };
  std::size_t start = 0;
  for (const std::size_t split : splits) {
    decoder.Feed(stream.substr(start, split - start));
    drain();
    start = split;
  }
  decoder.Feed(stream.substr(start));
  drain();
  decoder.Finish();
  drain();
  outcome.poisoned = decoder.poisoned();
  outcome.final_error = decoder.error();
  return outcome;
}

/// A stream that exercises resync: valid frames, a bad-CRC frame in the
/// middle (recoverable — the decoder must skip it and keep framing), and
/// valid frames after it.
std::string ResyncStream() {
  std::string corrupt = EncodeMessage(Report(7, 99, 0.25), 2.0);
  corrupt.back() ^= 0x01;  // payload bit rot: header fine, CRC mismatch
  std::string stream;
  stream += EncodeMessage(RequestJob(1), 1.0);
  stream += EncodeMessage(Report(1, 3, 0.5), 1.5);
  stream += corrupt;
  stream += EncodeMessage(RequestJob(2), 3.0);
  stream += EncodeMessage(Report(2, 4, 0.75), 3.5);
  return stream;
}

TEST(CodecResync, EverysingleSplitPointDecodesIdentically) {
  const std::string stream = ResyncStream();
  const DecodeOutcome reference = DecodeWithSplits(stream, {});
  ASSERT_EQ(reference.frames.size(), 4u);
  ASSERT_EQ(reference.recoverable,
            (std::vector<FrameError>{FrameError::kBadCrc}));
  ASSERT_FALSE(reference.poisoned);
  ASSERT_EQ(reference.final_error, FrameError::kNone);

  // The property: a split at ANY byte offset — inside a header's magic,
  // across the length/CRC words, mid-payload — changes nothing.
  for (std::size_t split = 1; split < stream.size(); ++split) {
    EXPECT_EQ(DecodeWithSplits(stream, {split}), reference)
        << "split at byte " << split;
  }
}

TEST(CodecResync, SeededRandomMultiSplitsDecodeIdentically) {
  const std::string stream = ResyncStream();
  const DecodeOutcome reference = DecodeWithSplits(stream, {});
  Rng rng(20260809);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::size_t> splits;
    const std::size_t cuts = 1 + rng.Index(12);
    for (std::size_t i = 0; i < cuts; ++i) {
      splits.push_back(1 + rng.Index(stream.size() - 1));
    }
    std::sort(splits.begin(), splits.end());
    splits.erase(std::unique(splits.begin(), splits.end()), splits.end());
    EXPECT_EQ(DecodeWithSplits(stream, splits), reference)
        << "round " << round;
  }
}

TEST(CodecResync, ByteAtATimeDecodesIdentically) {
  const std::string stream = ResyncStream();
  const DecodeOutcome reference = DecodeWithSplits(stream, {});
  std::vector<std::size_t> every_byte;
  for (std::size_t i = 1; i < stream.size(); ++i) every_byte.push_back(i);
  EXPECT_EQ(DecodeWithSplits(stream, every_byte), reference);
}

TEST(CodecResync, TruncationAtEveryOffsetIsDetectedOnEof) {
  // A clean two-frame stream cut at every offset: EOF exactly on a frame
  // boundary is fine; anywhere else the tail must be reported truncated
  // and the frames before the cut still decode.
  const std::string first = EncodeMessage(RequestJob(1), 1.0);
  const std::string second = EncodeMessage(Report(1, 3, 0.5), 1.5);
  const std::string stream = first + second;
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    const DecodeOutcome outcome =
        DecodeWithSplits(stream.substr(0, cut), {});
    const std::size_t whole_frames =
        cut >= stream.size() ? 2 : (cut >= first.size() ? 1 : 0);
    EXPECT_EQ(outcome.frames.size(), whole_frames) << "cut " << cut;
    const bool on_boundary =
        cut == 0 || cut == first.size() || cut == stream.size();
    EXPECT_EQ(outcome.final_error,
              on_boundary ? FrameError::kNone : FrameError::kTruncated)
        << "cut " << cut;
  }
}

// ---------------------------------------------------------------------------
// FaultyTransport over a real socketpair.

struct SocketPair {
  SocketPair() {
    HT_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
  }
  ~SocketPair() {
    ::close(fds[0]);
    ::close(fds[1]);
  }
  int fds[2];
};

TEST(FaultTransport, ShortWritesTearFramesButPreserveTheByteStream) {
  SocketPair pair;
  FaultyTransport transport({.seed = 9, .short_op_rate = 1.0});
  std::string message(256, '\0');
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<char>(i);
  }
  std::size_t sent = 0;
  std::size_t torn = 0;
  while (sent < message.size()) {
    const std::size_t remaining = message.size() - sent;
    const ssize_t n =
        transport.Send(pair.fds[0], message.data() + sent, remaining);
    ASSERT_GT(n, 0);
    // Every multi-byte op gets torn; a 1-byte tail can't be shortened.
    if (remaining > 1) {
      EXPECT_LT(static_cast<std::size_t>(n), remaining);
      ++torn;
    }
    sent += static_cast<std::size_t>(n);
  }
  EXPECT_GT(torn, 1u);
  EXPECT_EQ(transport.stats().short_ops, torn);

  std::string received(message.size(), '\0');
  std::size_t got = 0;
  while (got < received.size()) {
    const ssize_t n = SocketIo::Real().Recv(pair.fds[1], &received[got],
                                            received.size() - got);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  // Torn, not corrupted: the reassembled stream is byte-identical.
  EXPECT_EQ(received, message);
}

TEST(FaultTransport, EagainBurstsFailTheOpWithoutMovingBytes) {
  SocketPair pair;
  FaultyTransport transport({.seed = 2, .eagain_rate = 1.0});
  const char byte = 'x';
  for (int i = 0; i < 5; ++i) {
    errno = 0;
    EXPECT_EQ(transport.Send(pair.fds[0], &byte, 1), -1);
    EXPECT_EQ(errno, EAGAIN);
  }
  EXPECT_EQ(transport.stats().eagains, 5u);
  // Nothing crossed the wire.
  char scratch;
  EXPECT_EQ(::recv(pair.fds[1], &scratch, 1, MSG_DONTWAIT), -1);
}

TEST(FaultTransport, CorruptionFlipsOneByteAndNeverTouchesTheCallersBuffer) {
  SocketPair pair;
  FaultyTransport transport({.seed = 4, .corrupt_rate = 1.0});
  const std::string original(64, 'a');
  std::string buffer = original;
  ASSERT_EQ(transport.Send(pair.fds[0], buffer.data(), buffer.size()),
            static_cast<ssize_t>(buffer.size()));
  EXPECT_EQ(buffer, original);  // copy-on-send: caller's bytes are theirs

  std::string received(original.size(), '\0');
  ASSERT_EQ(
      SocketIo::Real().Recv(pair.fds[1], received.data(), received.size()),
      static_cast<ssize_t>(received.size()));
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (received[i] != original[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);  // exactly one byte per corrupted op
  EXPECT_EQ(transport.stats().corruptions, 1u);
}

TEST(FaultTransport, DisconnectCutsTheStreamForBothEnds) {
  SocketPair pair;
  FaultyTransport transport(
      {.seed = 3, .disconnect_rate = 1.0, .max_disconnects = 1});
  const char byte = 'x';
  errno = 0;
  EXPECT_EQ(transport.Send(pair.fds[0], &byte, 1), -1);
  EXPECT_EQ(errno, ECONNRESET);
  EXPECT_EQ(transport.stats().disconnects, 1u);
  // The peer sees a real EOF, not a hang: the shim shut the socket down.
  char scratch;
  EXPECT_EQ(::recv(pair.fds[1], &scratch, 1, 0), 0);
}

TEST(FaultTransport, SkipOpsLetsConnectionSetupThrough) {
  SocketPair pair;
  FaultyTransport transport(
      {.seed = 5, .skip_ops = 2, .eagain_rate = 1.0, .disconnect_rate = 1.0});
  const char byte = 'x';
  // First two ops are untouched despite every rate being 1.0 ...
  EXPECT_EQ(transport.Send(pair.fds[0], &byte, 1), 1);
  EXPECT_EQ(transport.Send(pair.fds[0], &byte, 1), 1);
  // ... and the third hits the plan.
  EXPECT_EQ(transport.Send(pair.fds[0], &byte, 1), -1);
  EXPECT_EQ(transport.stats().ops, 3u);
}

TEST(FaultTransport, SameSeedReplaysTheSameSchedule) {
  const FaultPlan plan{.seed = 77,
                       .short_op_rate = 0.5,
                       .eagain_rate = 0.2,
                       .eagain_burst = 2,
                       .corrupt_rate = 0.1};
  const auto run = [&] {
    SocketPair pair;
    FaultyTransport transport(plan);
    const std::string chunk(32, 'z');
    std::vector<ssize_t> returns;
    for (int i = 0; i < 64; ++i) {
      returns.push_back(
          transport.Send(pair.fds[0], chunk.data(), chunk.size()));
      char scratch[64];
      while (::recv(pair.fds[1], scratch, sizeof(scratch), MSG_DONTWAIT) > 0) {
      }
    }
    const FaultStats stats = transport.stats();
    returns.push_back(static_cast<ssize_t>(stats.short_ops));
    returns.push_back(static_cast<ssize_t>(stats.eagains));
    returns.push_back(static_cast<ssize_t>(stats.corruptions));
    return returns;
  };
  EXPECT_EQ(run(), run());  // determinism is the whole point of the layer
}

// ---------------------------------------------------------------------------
// FaultFs: planned file-op failures.

std::string FaultFsTempPath(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / "ht_fault_fs";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

struct TempFd {
  explicit TempFd(const std::string& path)
      : fd(::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644)) {
    HT_CHECK(fd >= 0);
  }
  ~TempFd() { ::close(fd); }
  int fd;
};

TEST(FaultFsOps, WindowFailsExactlyThePlannedOps) {
  TempFd file(FaultFsTempPath("window.bin"));
  FaultFs fs({{.begin = 2, .count = 2}});
  for (std::size_t i = 0; i < 6; ++i) {
    errno = 0;
    const ssize_t n = fs.Write(file.fd, "ab", 2);
    if (i == 2 || i == 3) {
      EXPECT_EQ(n, -1) << "op " << i;
      EXPECT_EQ(errno, ENOSPC) << "op " << i;  // the default errno
    } else {
      EXPECT_EQ(n, 2) << "op " << i;
    }
  }
  EXPECT_EQ(fs.ops_seen(), 6u);
  EXPECT_EQ(fs.faults_injected(), 2u);
  // Failed ops wrote nothing: only the 4 successful writes landed.
  EXPECT_EQ(std::filesystem::file_size(FaultFsTempPath("window.bin")), 8u);
}

TEST(FaultFsOps, KindFilterTargetsOnlyTheChosenOps) {
  TempFd file(FaultFsTempPath("kinds.bin"));
  FaultFs fs({{.begin = 0,
               .count = 100,
               .error = EIO,
               .fail_writes = false,
               .fail_fsyncs = true,
               .fail_renames = false,
               .fail_truncates = false}});
  EXPECT_EQ(fs.Write(file.fd, "ab", 2), 2);  // write passes through
  errno = 0;
  EXPECT_EQ(fs.Fsync(file.fd), -1);  // fsync inside the window fails
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(fs.Truncate(file.fd, 0), 0);
  EXPECT_EQ(fs.faults_injected(), 1u);
}

TEST(FaultFsOps, OpLogLocatesOpsByKind) {
  // The probe-run contract: an empty-window FaultFs counts and classifies
  // every op so a harness can aim a window at, say, "the middle fsync".
  const std::string from = FaultFsTempPath("log_from.bin");
  const std::string to = FaultFsTempPath("log_to.bin");
  TempFd file(from);
  FaultFs fs({});
  ASSERT_EQ(fs.Write(file.fd, "ab", 2), 2);
  ASSERT_EQ(fs.Fsync(file.fd), 0);
  ASSERT_EQ(fs.Write(file.fd, "cd", 2), 2);
  ASSERT_EQ(fs.Rename(from.c_str(), to.c_str()), 0);
  EXPECT_EQ(fs.ops_seen(), 4u);
  EXPECT_EQ(fs.faults_injected(), 0u);
  EXPECT_EQ(fs.op_indices(FaultFs::OpKind::kWrite),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(fs.op_indices(FaultFs::OpKind::kFsync),
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(fs.op_indices(FaultFs::OpKind::kRename),
            (std::vector<std::size_t>{3}));
}

}  // namespace
}  // namespace hypertune
