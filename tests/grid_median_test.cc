#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/median_rule.h"
#include "common/check.h"
#include "core/grid_search.h"
#include "core/sampler.h"
#include "sim/driver.h"

namespace hypertune {
namespace {

SearchSpace MixedSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0))
      .Add("n", Domain::Integer(1, 2))
      .Add("c", Domain::Choice({ParamValue{std::string{"a"}},
                                ParamValue{std::string{"b"}},
                                ParamValue{std::string{"c"}}}));
  return space;
}

TEST(GridSearch, GridSizeIsProductOfDims) {
  GridSearchOptions options;
  options.R = 10;
  options.resolution = 4;
  GridSearchScheduler grid(MixedSpace(), options);
  // 4 (continuous) * 2 (integer, cardinality-capped) * 3 (choices) = 24.
  EXPECT_EQ(grid.GridSize(), 24u);
}

TEST(GridSearch, EnumeratesDistinctPointsAndFinishes) {
  GridSearchOptions options;
  options.R = 10;
  options.resolution = 3;
  GridSearchScheduler grid(MixedSpace(), options);
  std::set<std::string> seen;
  while (auto job = grid.GetJob()) {
    seen.insert(job->config.ToString());
    EXPECT_DOUBLE_EQ(job->to_resource, 10);
    grid.ReportResult(*job, 0.5);
  }
  EXPECT_EQ(seen.size(), grid.GridSize());
  EXPECT_TRUE(grid.Finished());
}

TEST(GridSearch, IncumbentIsBestGridPoint) {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  GridSearchOptions options;
  options.R = 1;
  options.resolution = 8;
  GridSearchScheduler grid(space, options);
  while (auto job = grid.GetJob()) {
    const double x = job->config.GetDouble("x");
    grid.ReportResult(*job, std::abs(x - 0.45));
  }
  ASSERT_TRUE(grid.Current().has_value());
  const auto& best = grid.trials().Get(grid.Current()->trial_id).config;
  EXPECT_NEAR(best.GetDouble("x"), 0.45, 1.0 / 8);
}

TEST(GridSearch, LostJobsDoNotBlockCompletion) {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  GridSearchOptions options;
  options.R = 1;
  options.resolution = 4;
  GridSearchScheduler grid(space, options);
  int i = 0;
  while (auto job = grid.GetJob()) {
    if (i++ % 2 == 0) {
      grid.ReportLost(*job);
    } else {
      grid.ReportResult(*job, 0.3);
    }
  }
  EXPECT_TRUE(grid.Finished());
}

// ---------------------------------------------------------- median rule

std::shared_ptr<ConfigSampler> UnitSampler() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return MakeRandomSampler(space);
}

MedianRuleOptions SmallMedianOptions() {
  MedianRuleOptions options;
  options.R = 40;
  options.step_resource = 10;
  options.grace_steps = 1;
  options.min_cohort = 2;
  return options;
}

TEST(MedianRule, TrialsProgressInSteps) {
  MedianRuleScheduler tuner(UnitSampler(), SmallMedianOptions());
  const auto j0 = *tuner.GetJob();
  EXPECT_DOUBLE_EQ(j0.from_resource, 0);
  EXPECT_DOUBLE_EQ(j0.to_resource, 10);
  tuner.ReportResult(j0, 0.5);
  // Same trial resumes before any new trial starts.
  const auto j1 = *tuner.GetJob();
  EXPECT_EQ(j1.trial_id, j0.trial_id);
  EXPECT_DOUBLE_EQ(j1.from_resource, 10);
  EXPECT_DOUBLE_EQ(j1.to_resource, 20);
}

TEST(MedianRule, StopsTrialsWorseThanCohortMedian) {
  auto options = SmallMedianOptions();
  options.max_trials = 6;
  MedianRuleScheduler tuner(UnitSampler(), options);
  // Drive to completion: trials get losses by id — trial k has loss 0.1*k
  // at every step, so later trials fall below the median and are pruned.
  int guard = 0;
  while (!tuner.Finished() && guard++ < 200) {
    const auto job = tuner.GetJob();
    if (!job) break;
    tuner.ReportResult(*job, 0.1 * static_cast<double>(job->trial_id + 1));
  }
  EXPECT_TRUE(tuner.Finished());
  EXPECT_GT(tuner.NumStopped(), 0u);
  // The best trial is never stopped and completes R.
  EXPECT_EQ(tuner.trials().Get(0).status, TrialStatus::kCompleted);
  ASSERT_TRUE(tuner.Current().has_value());
  EXPECT_EQ(tuner.Current()->trial_id, 0);
  // Stopped trials consumed less than R.
  bool some_partial = false;
  for (const auto& trial : tuner.trials()) {
    if (trial.status == TrialStatus::kStopped) {
      EXPECT_LT(trial.resource_trained, options.R);
      some_partial = true;
    }
  }
  EXPECT_TRUE(some_partial);
}

TEST(MedianRule, GraceStepsProtectYoungTrials) {
  auto options = SmallMedianOptions();
  options.grace_steps = 4;  // = R / step: never stopped before completion
  options.max_trials = 5;
  MedianRuleScheduler tuner(UnitSampler(), options);
  int guard = 0;
  while (!tuner.Finished() && guard++ < 200) {
    const auto job = tuner.GetJob();
    if (!job) break;
    tuner.ReportResult(*job, 0.1 * static_cast<double>(job->trial_id + 1));
  }
  EXPECT_EQ(tuner.NumStopped(), 0u);
}

TEST(MedianRule, LostJobRetiresTrial) {
  MedianRuleScheduler tuner(UnitSampler(), SmallMedianOptions());
  const auto j0 = *tuner.GetJob();
  tuner.ReportLost(j0);
  EXPECT_EQ(tuner.trials().Get(j0.trial_id).status, TrialStatus::kLost);
  // Next job is a fresh trial, not a resume of the lost one.
  const auto j1 = *tuner.GetJob();
  EXPECT_NE(j1.trial_id, j0.trial_id);
}

TEST(MedianRule, PrunesMoreUnderParallelism) {
  // With the simulator and several workers, the rule still works and stops
  // a meaningful share of trials on a separable landscape.
  class Env final : public JobEnvironment {
   public:
    double Loss(const Configuration& config, Resource resource) override {
      return config.GetDouble("x") + 1.0 / (1.0 + resource);
    }
    double Duration(const Configuration&, Resource from,
                    Resource to) override {
      return to - from;
    }
  };
  auto options = SmallMedianOptions();
  options.min_cohort = 5;
  MedianRuleScheduler tuner(UnitSampler(), options);
  Env env;
  DriverOptions driver_options;
  driver_options.num_workers = 8;
  driver_options.time_limit = 2000;
  SimulationDriver driver(tuner, env, driver_options);
  const auto result = driver.Run();
  EXPECT_GT(result.jobs_completed, 100u);
  EXPECT_GT(tuner.NumStopped(), 10u);
}

TEST(MedianRule, OptionValidation) {
  auto options = SmallMedianOptions();
  options.step_resource = 0;
  EXPECT_THROW(MedianRuleScheduler(UnitSampler(), options), CheckError);
  options = SmallMedianOptions();
  options.min_cohort = 1;
  EXPECT_THROW(MedianRuleScheduler(UnitSampler(), options), CheckError);
}

}  // namespace
}  // namespace hypertune
