// End-to-end integration: every tuner drives every relevant surrogate
// benchmark through the simulator; results are sane, deterministic, and
// ordered the way the paper's headline claims predict.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/trajectory.h"
#include "common/check.h"
#include "baselines/bohb.h"
#include "baselines/fabolas.h"
#include "baselines/pbt.h"
#include "baselines/vizier.h"
#include "core/asha.h"
#include "core/async_hyperband.h"
#include "core/hyperband.h"
#include "core/random_search.h"
#include "core/sha.h"
#include "sim/driver.h"
#include "surrogate/benchmarks.h"

namespace hypertune {
namespace {

std::unique_ptr<Scheduler> MakeTuner(const std::string& name,
                                     const SyntheticBenchmark& bench,
                                     std::uint64_t seed) {
  const double R = bench.R();
  const double r = R / 64;
  if (name == "ASHA") {
    AshaOptions options;
    options.r = r;
    options.R = R;
    options.eta = 4;
    options.seed = seed;
    options.resume_from_checkpoint = bench.spec().resumable;
    return std::make_unique<AshaScheduler>(MakeRandomSampler(bench.space()),
                                           options);
  }
  if (name == "SHA") {
    ShaOptions options;
    options.n = 64;
    options.r = r;
    options.R = R;
    options.eta = 4;
    options.seed = seed;
    options.resume_from_checkpoint = bench.spec().resumable;
    return std::make_unique<SyncShaScheduler>(
        MakeRandomSampler(bench.space()), options);
  }
  if (name == "Hyperband") {
    HyperbandOptions options;
    options.n0 = 64;
    options.r = r;
    options.R = R;
    options.eta = 4;
    options.seed = seed;
    options.incumbent_policy = IncumbentPolicy::kByRung;
    return std::make_unique<HyperbandScheduler>(
        MakeRandomSampler(bench.space()), options);
  }
  if (name == "AsyncHyperband") {
    AsyncHyperbandOptions options;
    options.n0 = 64;
    options.r = r;
    options.R = R;
    options.eta = 4;
    options.seed = seed;
    return std::make_unique<AsyncHyperbandScheduler>(
        MakeRandomSampler(bench.space()), options);
  }
  if (name == "Random") {
    RandomSearchOptions options;
    options.R = R;
    options.seed = seed;
    return std::make_unique<RandomSearchScheduler>(
        MakeRandomSampler(bench.space()), options);
  }
  if (name == "BOHB") {
    BohbOptions options;
    options.sha.n = 64;
    options.sha.r = r;
    options.sha.R = R;
    options.sha.eta = 4;
    options.sha.seed = seed;
    return MakeBohb(bench.space(), options);
  }
  if (name == "PBT") {
    PbtOptions options;
    options.population_size = 10;
    options.step_resource = R / 16;
    options.max_resource = R;
    options.sync_window = R / 8;
    options.seed = seed;
    options.random_guess_loss = bench.spec().random_guess_loss * 0.98;
    return std::make_unique<PbtScheduler>(bench.space(), options);
  }
  if (name == "Vizier") {
    VizierOptions options;
    options.R = R;
    options.seed = seed;
    options.refit_every = 5;
    return std::make_unique<VizierScheduler>(bench.space(), options);
  }
  if (name == "Fabolas") {
    FabolasOptions options;
    options.R = R;
    options.seed = seed;
    return std::make_unique<FabolasScheduler>(bench.space(), options);
  }
  throw CheckError("unknown tuner " + name);
}

double FinalTestMetric(const std::string& tuner_name,
                       const std::string& bench_name, std::uint64_t seed,
                       int workers, double horizon_in_time_r) {
  auto bench = benchmarks::ByName(bench_name, seed);
  auto tuner = MakeTuner(tuner_name, *bench, seed);
  DriverOptions options;
  options.num_workers = workers;
  options.time_limit = horizon_in_time_r * bench->MeanTimeOfR();
  options.seed = seed * 31;
  SimulationDriver driver(*tuner, *bench, options);
  const auto result = driver.Run();
  const auto trajectory =
      TestMetricTrajectory(result, tuner->trials(), *bench);
  if (trajectory.empty()) return std::numeric_limits<double>::infinity();
  return trajectory.points().back().second;
}

TEST(Integration, EveryTunerRunsOnCifarArch) {
  for (const auto& name :
       {"ASHA", "SHA", "Hyperband", "AsyncHyperband", "Random", "BOHB",
        "PBT", "Vizier", "Fabolas"}) {
    const double metric = FinalTestMetric(name, "cifar_arch", 3, 8, 4.0);
    EXPECT_TRUE(std::isfinite(metric)) << name;
    EXPECT_LT(metric, 0.9) << name;   // better than untrained
    EXPECT_GT(metric, 0.15) << name;  // not below the global floor
  }
}

TEST(Integration, EveryTunerRunsOnPtbLstm) {
  for (const auto& name : {"ASHA", "AsyncHyperband", "Vizier"}) {
    const double metric = FinalTestMetric(name, "ptb_lstm", 5, 32, 3.0);
    EXPECT_TRUE(std::isfinite(metric)) << name;
    EXPECT_LT(metric, 2000.0) << name;
  }
}

TEST(Integration, AshaBeatsRandomOnParallelBudget) {
  // The core claim: with many workers and a fixed wall-clock budget,
  // early-stopping beats embarrassingly parallel random search. Averaged
  // over 3 seeds to damp noise.
  double asha_total = 0, random_total = 0;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    asha_total += FinalTestMetric("ASHA", "cifar_arch", seed, 25, 2.0);
    random_total += FinalTestMetric("Random", "cifar_arch", seed, 25, 2.0);
  }
  EXPECT_LT(asha_total, random_total);
}

TEST(Integration, AshaScalesWithWorkers) {
  // Section 4.2: more workers -> at least as good a configuration within
  // the same wall-clock budget.
  double err25 = 0, err1 = 0;
  for (std::uint64_t seed : {7u, 17u}) {
    err1 += FinalTestMetric("ASHA", "cifar_arch", seed, 1, 3.0);
    err25 += FinalTestMetric("ASHA", "cifar_arch", seed, 25, 3.0);
  }
  EXPECT_LE(err25, err1 + 0.02);
}

TEST(Integration, VizierDegradedByHeavyTailsVsAsha) {
  // Section 4.3: heavy-tailed perplexities hurt model-based full-resource
  // tuning; ASHA reaches a better perplexity in the same budget.
  double asha = 0, vizier = 0;
  for (std::uint64_t seed : {2u, 4u, 6u}) {
    asha += FinalTestMetric("ASHA", "ptb_lstm", seed, 64, 3.0);
    vizier += FinalTestMetric("Vizier", "ptb_lstm", seed, 64, 3.0);
  }
  EXPECT_LT(asha, vizier);
}

TEST(Integration, DeterministicEndToEnd) {
  const double a = FinalTestMetric("ASHA", "cifar_convnet", 9, 8, 2.0);
  const double b = FinalTestMetric("ASHA", "cifar_convnet", 9, 8, 2.0);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = FinalTestMetric("BOHB", "svhn_cnn", 9, 4, 2.0);
  const double d = FinalTestMetric("BOHB", "svhn_cnn", 9, 4, 2.0);
  EXPECT_DOUBLE_EQ(c, d);
}

TEST(Integration, SvmTasksUseFullRetraining) {
  // The SVM benchmarks are non-resumable; SHA still works, paying full
  // retrain costs, and finds a decent configuration.
  const double err = FinalTestMetric("SHA", "svm_vehicle", 13, 4, 6.0);
  EXPECT_LT(err, 0.5);
}

TEST(Integration, CheckpointingAcceleratesAsha) {
  // Ablation of Section 3.2's "when training is iterative, ASHA can return
  // an answer in time(R)": with resume disabled the same budget yields a
  // final metric no better than with resume enabled (usually worse).
  auto run = [&](bool resume, std::uint64_t seed) {
    auto bench = benchmarks::CifarArch(seed);
    AshaOptions options;
    options.r = bench->R() / 64;
    options.R = bench->R();
    options.eta = 4;
    options.seed = seed;
    options.resume_from_checkpoint = resume;
    AshaScheduler asha(MakeRandomSampler(bench->space()), options);
    DriverOptions driver_options;
    driver_options.num_workers = 16;
    driver_options.time_limit = 2.0 * bench->MeanTimeOfR();
    SimulationDriver driver(asha, *bench, driver_options);
    const auto result = driver.Run();
    return result.jobs_completed;
  };
  double resume_jobs = 0, scratch_jobs = 0;
  for (std::uint64_t seed : {3u, 5u, 8u}) {
    resume_jobs += static_cast<double>(run(true, seed));
    scratch_jobs += static_cast<double>(run(false, seed));
  }
  EXPECT_GT(resume_jobs, scratch_jobs);
}

}  // namespace
}  // namespace hypertune
