#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace hypertune {
namespace {

TEST(Json, TypePredicates) {
  EXPECT_TRUE(Json().IsNull());
  EXPECT_TRUE(Json(true).IsBool());
  EXPECT_TRUE(Json(1.5).IsNumber());
  EXPECT_TRUE(Json(std::int64_t{3}).IsInt());
  EXPECT_FALSE(Json(1.5).IsInt());
  EXPECT_TRUE(Json("hi").IsString());
  EXPECT_TRUE(Json(JsonArray{}).IsArray());
  EXPECT_TRUE(Json(JsonObject{}).IsObject());
}

TEST(Json, AccessorsAndMismatches) {
  EXPECT_TRUE(Json(true).AsBool());
  EXPECT_DOUBLE_EQ(Json(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Json(std::int64_t{7}).AsDouble(), 7.0);  // widening
  EXPECT_EQ(Json(std::int64_t{7}).AsInt(), 7);
  EXPECT_EQ(Json(4.0).AsInt(), 4);  // exactly-integral double
  EXPECT_THROW(Json(4.5).AsInt(), CheckError);
  EXPECT_THROW(Json("x").AsDouble(), CheckError);
  EXPECT_THROW(Json(1.0).AsString(), CheckError);
}

TEST(Json, ObjectBuildAndLookup) {
  Json json;  // null -> becomes object on Set
  json.Set("a", Json(1));
  json.Set("b", Json("two"));
  json.Set("a", Json(3));  // overwrite
  EXPECT_EQ(json.size(), 2u);
  EXPECT_EQ(json.at("a").AsInt(), 3);
  EXPECT_EQ(json.at("b").AsString(), "two");
  EXPECT_TRUE(json.Has("a"));
  EXPECT_FALSE(json.Has("zz"));
  EXPECT_THROW(json.at("zz"), CheckError);
}

TEST(Json, ArrayBuildAndIndex) {
  Json json;  // null -> becomes array on PushBack
  json.PushBack(Json(1));
  json.PushBack(Json(2));
  EXPECT_EQ(json.size(), 2u);
  EXPECT_EQ(json.at(std::size_t{1}).AsInt(), 2);
  EXPECT_THROW(json.at(std::size_t{5}), CheckError);
}

TEST(Json, DumpCompact) {
  Json json = JsonObject{};
  json.Set("n", Json(std::int64_t{42}));
  json.Set("x", Json(1.5));
  json.Set("s", Json("a\"b"));
  json.Set("flag", Json(false));
  json.Set("list", Json(JsonArray{Json(1), Json()}));
  EXPECT_EQ(json.Dump(),
            R"({"n":42,"x":1.5,"s":"a\"b","flag":false,"list":[1,null]})");
}

TEST(Json, DumpPrettyIsReparsable) {
  Json json = JsonObject{};
  json.Set("outer", Json(JsonObject{{"inner", Json(JsonArray{Json(1)})}}));
  const std::string pretty = json.Dump(2);
  EXPECT_NE(pretty.find("\n  \"outer\""), std::string::npos);
  EXPECT_EQ(Json::Parse(pretty), json);
}

TEST(Json, IntDoubleDistinctionSurvivesRoundTrip) {
  Json json = JsonObject{};
  json.Set("i", Json(std::int64_t{5}));
  json.Set("d", Json(5.0));  // integral-valued double
  const Json back = Json::Parse(json.Dump());
  EXPECT_TRUE(back.at("i").IsInt());
  EXPECT_FALSE(back.at("d").IsInt());
  EXPECT_DOUBLE_EQ(back.at("d").AsDouble(), 5.0);
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  Json json = JsonArray{Json(std::nan("")), Json(INFINITY)};
  EXPECT_EQ(json.Dump(), "[null,null]");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null").IsNull());
  EXPECT_TRUE(Json::Parse("true").AsBool());
  EXPECT_FALSE(Json::Parse("false").AsBool());
  EXPECT_EQ(Json::Parse("-17").AsInt(), -17);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5e-3").AsDouble(), 0.0025);
  EXPECT_EQ(Json::Parse(R"("he\nllo")").AsString(), "he\nllo");
}

TEST(Json, ParseNestedWithWhitespace) {
  const auto json = Json::Parse(R"(
    { "a" : [ 1 , { "b" : "c" } , [] ] ,
      "d" : {} }
  )");
  EXPECT_EQ(json.at("a").size(), 3u);
  EXPECT_EQ(json.at("a").at(std::size_t{1}).at("b").AsString(), "c");
  EXPECT_EQ(json.at("d").size(), 0u);
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(Json::Parse(R"("A")").AsString(), "A");
  EXPECT_EQ(Json::Parse(R"("é")").AsString(), "\xc3\xa9");  // é
}

TEST(Json, ParseErrorsCarryOffsets) {
  EXPECT_THROW(Json::Parse(""), CheckError);
  EXPECT_THROW(Json::Parse("{"), CheckError);
  EXPECT_THROW(Json::Parse("[1,]2"), CheckError);
  EXPECT_THROW(Json::Parse("{\"a\" 1}"), CheckError);
  EXPECT_THROW(Json::Parse("tru"), CheckError);
  EXPECT_THROW(Json::Parse("1 2"), CheckError);
  EXPECT_THROW(Json::Parse("\"unterminated"), CheckError);
}

TEST(Json, RoundTripComplexDocument) {
  Json document = JsonObject{};
  document.Set("name", Json("fig5"));
  Json methods = JsonArray{};
  for (int i = 0; i < 3; ++i) {
    Json method = JsonObject{};
    method.Set("id", Json(i));
    method.Set("mean", Json(0.1 * i + 0.05));
    methods.PushBack(std::move(method));
  }
  document.Set("methods", std::move(methods));
  EXPECT_EQ(Json::Parse(document.Dump()), document);
  EXPECT_EQ(Json::Parse(document.Dump(4)), document);
}

}  // namespace
}  // namespace hypertune
