// The shared trial-lifecycle core: exactly-once outcome validation, record
// and recommendation bookkeeping, backend-agnostic hazard injection, and
// the cross-backend properties the unification guarantees — a lost job's
// loss never reaches the scheduler on any backend, and hazard fates drawn
// from the same seed produce the same drop/straggler decisions on the
// simulator and the real thread-pool executor.
#include "lifecycle/lifecycle.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/random_search.h"
#include "lifecycle/hazards.h"
#include "runtime/executor.h"
#include "service/server.h"
#include "service/worker.h"
#include "sim/driver.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

RandomSearchOptions CappedSearch(int trials) {
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = trials;
  return options;
}

/// Forwards to an inner scheduler while recording, per job tag-equivalent
/// (trial id + rung), how it was resolved — the end-to-end witness that a
/// backend reports each leased job exactly once and never both ways.
class SpyScheduler final : public Scheduler {
 public:
  explicit SpyScheduler(Scheduler& inner) : inner_(inner) {}

  std::optional<Job> GetJob() override {
    auto job = inner_.GetJob();
    if (job) ++leased_;
    return job;
  }
  void ReportResult(const Job& job, double loss) override {
    results_.push_back({job.trial_id, loss});
    inner_.ReportResult(job, loss);
  }
  void ReportLost(const Job& job) override {
    losses_.push_back(job.trial_id);
    inner_.ReportLost(job);
  }
  bool Finished() const override { return inner_.Finished(); }
  std::optional<Recommendation> Current() const override {
    return inner_.Current();
  }
  const TrialBank& trials() const override { return inner_.trials(); }
  std::string name() const override { return inner_.name(); }

  std::size_t leased() const { return leased_; }
  const std::vector<std::pair<TrialId, double>>& results() const {
    return results_;
  }
  const std::vector<TrialId>& losses() const { return losses_; }

 private:
  Scheduler& inner_;
  std::size_t leased_ = 0;
  std::vector<std::pair<TrialId, double>> results_;
  std::vector<TrialId> losses_;
};

class LinearEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    (void)resource;
    return config.GetDouble("x");
  }
  double Duration(const Configuration&, Resource from, Resource to) override {
    return to - from;
  }
};

TEST(Lifecycle, EveryLeaseResolvesExactlyOnce) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(12));
  SpyScheduler spy(scheduler);
  TrialLifecycle lifecycle(spy, {});
  std::uint64_t expected_lease = 1;
  while (auto leased = lifecycle.Acquire()) {
    // Lease ids are dense, in lease order (the service reuses them as
    // protocol job ids).
    EXPECT_EQ(leased->lease_id, expected_lease++);
    EXPECT_EQ(lifecycle.pending_leases(), 1u);
    lifecycle.Complete(*leased, 0.5, {0, 1, 0, 0});
  }
  EXPECT_EQ(lifecycle.pending_leases(), 0u);
  EXPECT_EQ(lifecycle.completed_jobs(), 12u);
  EXPECT_EQ(lifecycle.lost_jobs(), 0u);
  EXPECT_EQ(lifecycle.records().size(), 12u);
  EXPECT_EQ(spy.leased(), 12u);
  EXPECT_EQ(spy.results().size(), 12u);
  EXPECT_TRUE(spy.losses().empty());
}

TEST(Lifecycle, DoubleCompleteThrows) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(4));
  TrialLifecycle lifecycle(scheduler, {});
  const auto leased = lifecycle.Acquire();
  ASSERT_TRUE(leased.has_value());
  lifecycle.Complete(*leased, 0.5, {0, 1, 0, 0});
  EXPECT_THROW(lifecycle.Complete(*leased, 0.5, {0, 2, 0, 0}), CheckError);
  EXPECT_EQ(lifecycle.completed_jobs(), 1u);
  EXPECT_EQ(lifecycle.records().size(), 1u);
}

TEST(Lifecycle, CompleteAfterLoseThrows) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(4));
  SpyScheduler spy(scheduler);
  TrialLifecycle lifecycle(spy, {});
  const auto leased = lifecycle.Acquire();
  ASSERT_TRUE(leased.has_value());
  lifecycle.Lose(*leased, {0, 1, 0, 0});
  // A loss after the drop must never reach the scheduler.
  EXPECT_THROW(lifecycle.Complete(*leased, 0.4, {0, 2, 0, 0}), CheckError);
  EXPECT_TRUE(spy.results().empty());
  EXPECT_EQ(spy.losses().size(), 1u);
  EXPECT_EQ(lifecycle.lost_jobs(), 1u);
}

TEST(Lifecycle, UnknownLeaseThrows) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(4));
  TrialLifecycle lifecycle(scheduler, {});
  LeasedJob forged;
  forged.lease_id = 17;
  EXPECT_THROW(lifecycle.Complete(forged, 0.5, {0, 1, 0, 0}), CheckError);
  EXPECT_THROW(lifecycle.Lose(forged, {0, 1, 0, 0}), CheckError);
}

TEST(Lifecycle, NonFiniteLossRejectedLeaseSurvives) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(4));
  TrialLifecycle lifecycle(scheduler, {});
  const auto leased = lifecycle.Acquire();
  ASSERT_TRUE(leased.has_value());
  // Validation happens before any state mutation: the lease stays pending,
  // so the backend can retry with a sane value.
  EXPECT_THROW(
      lifecycle.Complete(*leased, std::numeric_limits<double>::quiet_NaN(),
                         {0, 1, 0, 0}),
      CheckError);
  EXPECT_THROW(
      lifecycle.Complete(*leased, std::numeric_limits<double>::infinity(),
                         {0, 1, 0, 0}),
      CheckError);
  EXPECT_EQ(lifecycle.pending_leases(), 1u);
  lifecycle.Complete(*leased, 0.25, {0, 1, 0, 0});
  EXPECT_EQ(lifecycle.completed_jobs(), 1u);
}

TEST(Lifecycle, RecordsCarryJobAndTiming) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(2));
  TrialLifecycle lifecycle(scheduler, {});
  const auto leased = lifecycle.Acquire();
  ASSERT_TRUE(leased.has_value());
  lifecycle.Complete(*leased, 0.125, {1.5, 4.25, 0.5, 3});
  ASSERT_EQ(lifecycle.records().size(), 1u);
  const RunRecord& record = lifecycle.records()[0];
  EXPECT_EQ(record.trial_id, leased->job.trial_id);
  EXPECT_EQ(record.rung, leased->job.rung);
  EXPECT_DOUBLE_EQ(record.to_resource, leased->job.to_resource);
  EXPECT_DOUBLE_EQ(record.loss, 0.125);
  EXPECT_FALSE(record.lost);
  EXPECT_DOUBLE_EQ(record.start_time, 1.5);
  EXPECT_DOUBLE_EQ(record.end_time, 4.25);
  EXPECT_DOUBLE_EQ(record.queue_wait, 0.5);
  EXPECT_EQ(record.worker, 3);
  EXPECT_EQ(record.lease_id, leased->lease_id);
}

TEST(Lifecycle, RecommendationTrajectoryRecordsChangesOnly) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(20));
  TrialLifecycle lifecycle(scheduler, {.track_recommendations = true});
  double t = 0;
  while (auto leased = lifecycle.Acquire()) {
    t += 1;
    lifecycle.Complete(*leased, leased->job.config.GetDouble("x"), {t - 1, t});
  }
  const auto& recs = lifecycle.recommendations();
  ASSERT_FALSE(recs.empty());
  EXPECT_LE(recs.size(), lifecycle.records().size());
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i].loss, recs[i - 1].loss);  // incumbent only improves
  }
}

TEST(HazardInjector, DisabledPlanIsIdentity) {
  HazardInjector injector({}, 7);
  EXPECT_FALSE(injector.enabled());
  const HazardPlan plan = injector.Plan(12.5);
  EXPECT_DOUBLE_EQ(plan.duration, 12.5);
  EXPECT_FALSE(plan.dropped());
  EXPECT_DOUBLE_EQ(plan.end_after(), 12.5);
}

TEST(HazardInjector, StragglerOnlyInflatesDuration) {
  HazardOptions options;
  options.straggler_std = 1.0;
  HazardInjector injector(options, 11);
  ASSERT_TRUE(injector.enabled());
  bool inflated = false;
  for (int i = 0; i < 200; ++i) {
    const HazardPlan plan = injector.Plan(5.0);
    EXPECT_GE(plan.duration, 5.0);
    EXPECT_FALSE(plan.dropped());
    inflated |= plan.duration > 5.0;
  }
  EXPECT_TRUE(inflated);
}

TEST(HazardInjector, DropsLandStrictlyInsideTheRun) {
  HazardOptions options;
  options.drop_probability = 0.05;
  HazardInjector injector(options, 13);
  int drops = 0;
  for (int i = 0; i < 500; ++i) {
    const HazardPlan plan = injector.Plan(20.0);
    if (plan.dropped()) {
      ++drops;
      EXPECT_GT(*plan.drop_after, 0.0);
      EXPECT_LT(*plan.drop_after, plan.duration);
      EXPECT_DOUBLE_EQ(plan.end_after(), *plan.drop_after);
    }
  }
  EXPECT_GT(drops, 0);
}

TEST(HazardInjector, SameSeedReplaysIdenticalFates) {
  HazardOptions options;
  options.straggler_std = 0.5;
  options.drop_probability = 0.02;
  HazardInjector a(options, 99);
  HazardInjector b(options, 99);
  for (int i = 0; i < 300; ++i) {
    const HazardPlan pa = a.Plan(3.0 + i % 7);
    const HazardPlan pb = b.Plan(3.0 + i % 7);
    EXPECT_DOUBLE_EQ(pa.duration, pb.duration);
    ASSERT_EQ(pa.dropped(), pb.dropped());
    if (pa.dropped()) {
      EXPECT_DOUBLE_EQ(*pa.drop_after, *pb.drop_after);
    }
  }
}

TEST(ExecutorHazards, DropAccountingMatchesSimulatorForSameSeed) {
  // One worker on each backend: the lease order — and with it the
  // fate-draw order — is the same sequential order, so the same seed must
  // produce the same per-job complete/drop decisions and losses.
  constexpr std::uint64_t kSeed = 77;
  HazardOptions hazards;
  hazards.straggler_std = 0.4;
  hazards.drop_probability = 0.01;

  RandomSearchScheduler sim_scheduler(MakeRandomSampler(UnitSpace()),
                                      CappedSearch(60));
  LinearEnv env;
  DriverOptions driver_options;
  driver_options.num_workers = 1;
  driver_options.seed = kSeed;
  driver_options.hazards = hazards;
  SimulationDriver driver(sim_scheduler, env, driver_options);
  const DriverResult sim = driver.Run();

  RandomSearchScheduler exec_scheduler(MakeRandomSampler(UnitSpace()),
                                       CappedSearch(60));
  ExecutorOptions executor_options;
  executor_options.num_workers = 1;
  executor_options.hazards = hazards;
  executor_options.hazard_seed = kSeed;
  executor_options.hazard_duration = [&env](const Job& job) {
    return env.Duration(job.config, job.from_resource, job.to_resource);
  };
  ThreadPoolExecutor executor(
      exec_scheduler,
      [&env](const Job& job) { return env.Loss(job.config, job.to_resource); },
      executor_options);
  const ExecutorResult real = executor.Run();

  EXPECT_EQ(real.jobs_completed, sim.jobs_completed);
  EXPECT_EQ(real.jobs_lost, sim.jobs_dropped);
  ASSERT_EQ(real.records.size(), sim.completions.size());
  for (std::size_t i = 0; i < real.records.size(); ++i) {
    EXPECT_EQ(real.records[i].trial_id, sim.completions[i].trial_id);
    EXPECT_EQ(real.records[i].lost, sim.completions[i].lost);
    EXPECT_DOUBLE_EQ(real.records[i].loss, sim.completions[i].loss);
  }
  // The run actually exercised both outcomes.
  EXPECT_GT(sim.jobs_dropped, 0u);
  EXPECT_GT(sim.jobs_completed, 0u);
}

TEST(ExecutorHazards, DroppedJobsNeverTrain) {
  HazardOptions hazards;
  hazards.drop_probability = 0.05;  // ~40% of 10-unit jobs drop
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(40));
  std::atomic<int> trained{0};
  ExecutorOptions options;
  options.num_workers = 4;
  options.hazards = hazards;
  ThreadPoolExecutor executor(
      scheduler,
      [&](const Job&) {
        ++trained;
        return 0.5;
      },
      options);
  const ExecutorResult result = executor.Run();
  EXPECT_EQ(result.jobs_completed + result.jobs_lost, 40u);
  EXPECT_GT(result.jobs_lost, 0u);
  // A dropped job is preempted before training lands: the train function
  // runs only for completed jobs.
  EXPECT_EQ(static_cast<std::size_t>(trained.load()), result.jobs_completed);
  // And the scheduler's books agree.
  std::size_t lost_trials = 0;
  for (const auto& trial : scheduler.trials()) {
    lost_trials += trial.status == TrialStatus::kLost;
  }
  EXPECT_EQ(lost_trials, result.jobs_lost);
}

TEST(ExecutorHazards, TimeScaleInjectsRealStragglerDelay) {
  // With a time scale, straggler inflation becomes actual wall-clock sleep.
  // Replay the injector stream to compute the delay the executor must have
  // injected, then check the run took at least that long.
  constexpr std::uint64_t kSeed = 5;
  constexpr double kScale = 1e-3;  // 1 virtual unit = 1ms
  HazardOptions hazards;
  hazards.straggler_std = 1.0;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(10));
  ExecutorOptions options;
  options.num_workers = 1;
  options.hazards = hazards;
  options.hazard_seed = kSeed;
  options.hazard_time_scale = kScale;
  ThreadPoolExecutor executor(
      scheduler, [](const Job&) { return 0.5; }, options);
  const ExecutorResult result = executor.Run();
  ASSERT_EQ(result.jobs_completed, 10u);

  HazardInjector replay(hazards, kSeed);
  double expected_delay = 0;
  for (int i = 0; i < 10; ++i) {
    expected_delay += (replay.Plan(10.0).duration - 10.0) * kScale;
  }
  EXPECT_GT(expected_delay, 0.0);
  EXPECT_GE(result.elapsed_seconds, expected_delay * 0.9);
}

TEST(ServerHazards, InjectedDropsBecomeExpiredLeases) {
  // The service path: a worker whose job draws a drop abandons it silently;
  // the server's lease expiry turns that into a lost job for the scheduler.
  RandomSearchOptions search = CappedSearch(40);
  search.seed = 3;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), search);
  LinearEnv env;
  TuningServer server(scheduler, {.lease_timeout = 20});
  HazardOptions hazards;
  hazards.drop_probability = 0.05;
  HazardInjector injector(hazards, 21);
  std::vector<SimulatedWorker> pool;
  for (int i = 0; i < 4; ++i) {
    pool.emplace_back(static_cast<std::uint64_t>(i), env,
                      /*heartbeat_interval=*/5.0, /*prefetch=*/1, &injector);
  }
  double now = 0;
  for (; now < 1000; now += 0.5) {
    for (auto& worker : pool) {
      if (now >= worker.next_action_time()) worker.OnTick(server, now);
    }
  }
  server.Tick(now + 100);  // flush any still-pending abandoned leases

  std::size_t dropped = 0;
  for (const auto& worker : pool) dropped += worker.jobs_dropped();
  ASSERT_GT(dropped, 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.leases_expired, dropped);
  EXPECT_EQ(stats.jobs_completed + stats.leases_expired, 40u);

  // The unified record log agrees with the protocol stats.
  std::size_t lost_records = 0;
  for (const auto& record : server.run_records()) {
    lost_records += record.lost;
    EXPECT_GE(record.end_time, record.start_time);
  }
  EXPECT_EQ(lost_records, stats.leases_expired);
  EXPECT_EQ(server.run_records().size(),
            stats.jobs_completed + stats.leases_expired);
}

TEST(Server, NonFiniteLossReportRejectedLeaseIntact) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(4));
  TuningServer server(scheduler, {.lease_timeout = 30});
  Json request = JsonObject{};
  request.Set("type", Json("request_job"));
  request.Set("worker", Json(std::int64_t{0}));
  const Json granted = server.HandleMessage(request, 0);
  ASSERT_EQ(granted.at("type").AsString(), "job");
  const std::int64_t job_id = granted.at("job_id").AsInt();

  Json bad = JsonObject{};
  bad.Set("type", Json("report"));
  bad.Set("worker", Json(std::int64_t{0}));
  bad.Set("job_id", Json(job_id));
  bad.Set("loss", Json(std::numeric_limits<double>::quiet_NaN()));
  const Json rejected = server.HandleMessage(bad, 1);
  EXPECT_EQ(rejected.at("type").AsString(), "error");
  EXPECT_EQ(server.stats().jobs_completed, 0u);
  EXPECT_EQ(server.stats().active_leases, 1u);  // lease survives the retry

  Json good = JsonObject{};
  good.Set("type", Json("report"));
  good.Set("worker", Json(std::int64_t{0}));
  good.Set("job_id", Json(job_id));
  good.Set("loss", Json(0.5));
  const Json accepted = server.HandleMessage(good, 2);
  EXPECT_EQ(accepted.at("type").AsString(), "ack");
  EXPECT_EQ(server.stats().jobs_completed, 1u);
  ASSERT_EQ(server.run_records().size(), 1u);
  EXPECT_DOUBLE_EQ(server.run_records()[0].loss, 0.5);
  EXPECT_DOUBLE_EQ(server.run_records()[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(server.run_records()[0].end_time, 2.0);
}

TEST(Server, DoubleReportIsStaleNotDoubleCounted) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                  CappedSearch(4));
  SpyScheduler spy(scheduler);
  TuningServer server(spy, {.lease_timeout = 30});
  Json request = JsonObject{};
  request.Set("type", Json("request_job"));
  request.Set("worker", Json(std::int64_t{0}));
  const Json granted = server.HandleMessage(request, 0);
  ASSERT_EQ(granted.at("type").AsString(), "job");
  const std::int64_t job_id = granted.at("job_id").AsInt();

  Json report = JsonObject{};
  report.Set("type", Json("report"));
  report.Set("worker", Json(std::int64_t{0}));
  report.Set("job_id", Json(job_id));
  report.Set("loss", Json(0.5));
  EXPECT_EQ(server.HandleMessage(report, 1).at("type").AsString(), "ack");
  // A duplicate (e.g. a retry after a lost ack) is acknowledged as stale and
  // never reaches the scheduler a second time.
  const Json duplicate = server.HandleMessage(report, 2);
  EXPECT_EQ(duplicate.at("type").AsString(), "ack");
  EXPECT_TRUE(duplicate.at("stale").AsBool());
  EXPECT_EQ(spy.results().size(), 1u);
  EXPECT_EQ(server.stats().jobs_completed, 1u);
  EXPECT_EQ(server.stats().stale_reports_ignored, 1u);
  EXPECT_EQ(server.run_records().size(), 1u);
}

}  // namespace
}  // namespace hypertune
