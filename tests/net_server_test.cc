// NetServer integration: a real ASHA study over loopback TCP (binary and
// JSON transports) lands on the same decisions as in-process, idle leases
// expire (and are journaled) with zero inbound traffic, malformed frames
// are accounted without taking the loop down, and graceful shutdown pushes
// workers into the PR-5 backoff path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/asha.h"
#include "fault/fault.h"
#include "core/random_search.h"
#include "core/trial_json.h"
#include "durability/durable_server.h"
#include "net/codec.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "service/server.h"
#include "service/worker.h"
#include "study/study_manager.h"
#include "telemetry/telemetry.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

class RankEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    return config.GetDouble("x") * (1.0 + 1.0 / resource);
  }
  double Duration(const Configuration&, Resource from, Resource to) override {
    return to - from;
  }
};

Json RequestJob(std::uint64_t worker) {
  Json message = JsonObject{};
  message.Set("type", Json("request_job"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  return message;
}

Json Report(std::uint64_t worker, std::int64_t job_id, double loss) {
  Json message = JsonObject{};
  message.Set("type", Json("report"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  message.Set("loss", Json(loss));
  return message;
}

/// Polls `predicate` until it holds or `seconds` elapse — the loop thread
/// publishes stats asynchronously, so tests wait instead of sleeping blind.
bool WaitFor(const std::function<bool()>& predicate, double seconds = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

/// Bare socket speaking raw bytes — for injecting malformed frames the
/// NetWorkerClient would never produce.
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    HT_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    HT_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
    HT_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0);
    timeval timeout{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }
  ~RawClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void SendAll(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Next binary frame off the wire (decoded client-side), or nullopt on
  /// EOF/timeout.
  std::optional<WireFrame> RecvFrame() {
    for (;;) {
      if (auto frame = decoder_.Next()) return frame;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;
      decoder_.Feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    }
  }

  /// Next newline-terminated JSON line, or nullopt on EOF/timeout.
  std::optional<std::string> RecvLine() {
    for (;;) {
      const std::size_t newline = line_buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = line_buffer_.substr(0, newline);
        line_buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;
      line_buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True once the peer sends FIN (reads drained to EOF).
  bool ReadToEof() {
    for (;;) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout: no FIN
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  std::string line_buffer_;
};

// --- Transport equivalence: one study, three transports, same decisions ---

struct StudyResult {
  std::string snapshot;  // TuningServer::Snapshot().Dump()
  bool finished = false;
  std::size_t leases_expired = 0;
  std::size_t jobs_completed = 0;
};

/// Runs the deterministic 8-worker ASHA study from service_test's
/// end-to-end harness, either in-process (transport unset) or through a
/// real NetServer over loopback TCP.
StudyResult RunStudy(std::optional<WireTransport> transport) {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.max_trials = 40;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 30});

  std::optional<NetServer> net;
  std::vector<std::unique_ptr<ServerConnection>> connections;
  if (transport.has_value()) {
    NetServerOptions net_options;
    net_options.clock = NetClock::kMessage;  // envelope time drives the study
    net.emplace(server, net_options);
    net->Start();
    for (int i = 0; i < 8; ++i) {
      connections.push_back(std::make_unique<NetWorkerClient>(
          "127.0.0.1", net->port(), NetClientOptions{.transport = *transport}));
    }
  } else {
    for (int i = 0; i < 8; ++i) {
      connections.push_back(std::make_unique<DirectConnection>(&server));
    }
  }

  RankEnv env;
  std::vector<SimulatedWorker> workers;
  for (std::uint64_t i = 0; i < 8; ++i) {
    workers.emplace_back(i, env, /*heartbeat_interval=*/5);
  }
  for (double now = 0; now < 200; now += 0.5) {
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (now >= workers[i].next_action_time()) {
        workers[i].OnTick(*connections[i], now);
      }
    }
  }
  if (net.has_value()) net->Stop();  // joins the loop; server safe to inspect

  StudyResult result;
  result.snapshot = server.Snapshot().Dump();
  result.finished = asha.Finished();
  result.leases_expired = server.stats().leases_expired;
  result.jobs_completed = server.stats().jobs_completed;
  return result;
}

TEST(NetLoopback, AshaStudyIsTransportInvariant) {
  const StudyResult inproc = RunStudy(std::nullopt);
  ASSERT_TRUE(inproc.finished);
  ASSERT_EQ(inproc.leases_expired, 0u);
  ASSERT_GT(inproc.jobs_completed, 40u);

  const StudyResult binary = RunStudy(WireTransport::kBinary);
  EXPECT_TRUE(binary.finished);
  EXPECT_EQ(binary.leases_expired, 0u);
  EXPECT_EQ(binary.jobs_completed, inproc.jobs_completed);
  // The whole point of the wire layer: byte-identical server state.
  EXPECT_EQ(binary.snapshot, inproc.snapshot);

  const StudyResult json = RunStudy(WireTransport::kJson);
  EXPECT_TRUE(json.finished);
  EXPECT_EQ(json.jobs_completed, inproc.jobs_completed);
  EXPECT_EQ(json.snapshot, inproc.snapshot);
}

// --- Idle expiry: the timer satellite ---

TEST(NetIdleExpiry, LeaseExpiresAndIsJournaledWithZeroTraffic) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "ht_net_idle_expiry";
  fs::remove_all(dir);

  RandomSearchOptions options;
  options.R = 10;
  std::int64_t trial_id = -1;
  {
    RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
    DurableServer durable(scheduler, {.lease_timeout = 0.1},
                          {.dir = dir.string(), .sync = SyncPolicy::kAlways});
    NetServerOptions net_options;
    net_options.clock = NetClock::kWall;
    net_options.tick_interval = 0.02;
    NetServer net(durable, net_options);
    net.Start();

    NetWorkerClient client("127.0.0.1", net.port());
    const auto reply = client.Send(RequestJob(1), 0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->at("type").AsString(), "job");
    trial_id = JobFromJson(reply->at("job")).trial_id;

    // Total silence from here on: no heartbeat, no report, no traffic at
    // all. Only the server-side timer can expire the lease.
    ASSERT_TRUE(WaitFor([&] { return net.stats().timer_ticks >= 15; }));
    net.Stop();

    EXPECT_GT(net.stats().timer_ticks, 0u);
    EXPECT_EQ(durable.server().stats().leases_expired, 1u);
    EXPECT_EQ(durable.server().stats().active_leases, 0u);
    EXPECT_EQ(scheduler.trials().Get(trial_id).status, TrialStatus::kLost);
  }

  // The expiry reached the journal: a recovery from the state dir replays
  // it and sees the lost trial without any live server involved.
  RandomSearchScheduler recovered_scheduler(MakeRandomSampler(UnitSpace()),
                                            options);
  DurableServer recovered(recovered_scheduler, {.lease_timeout = 0.1},
                          {.dir = dir.string()});
  EXPECT_TRUE(recovered.recovered());
  EXPECT_GE(recovered.replayed_events(), 2u);  // grant + expire
  EXPECT_EQ(recovered_scheduler.trials().Get(trial_id).status,
            TrialStatus::kLost);
  fs::remove_all(dir);
}

TEST(NetStudyIdleExpiry, SuspendedStudyLeasesSurviveTheIdleTimer) {
  // The idle-expiry satellite: NetServer's timer ticks route through the
  // StudyManager, which must skip suspended studies — their leases are
  // frozen, not expired — while still expiring the rest of the fleet.
  StudyManagerOptions options;
  options.server.lease_timeout = 0.1;
  options.default_config = Json();
  StudyManager manager(MakeStudySchedulerFactory(UnitSpace()), options);
  Json config = JsonObject{};
  config.Set("kind", Json("random"));
  ASSERT_TRUE(manager.CreateStudy("frozen", config, 0.0));
  ASSERT_TRUE(manager.CreateStudy("running", config, 0.0));

  NetServerOptions net_options;
  net_options.clock = NetClock::kWall;
  net_options.tick_interval = 0.02;
  NetServer net(manager, net_options);
  net.Start();
  NetWorkerClient client("127.0.0.1", net.port());

  const auto lease = [&](const std::string& study) {
    Json request = RequestJob(1);
    request.Set("study", Json(study));
    const auto reply = client.Send(request, 0);
    HT_CHECK(reply.has_value());
    HT_CHECK(reply->at("type").AsString() == "job");
  };
  lease("frozen");
  lease("running");
  {
    Json suspend = JsonObject{};
    suspend.Set("type", Json("suspend_study"));
    suspend.Set("study", Json("frozen"));
    const auto reply = client.Send(suspend, 0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->at("type").AsString(), "ack");
  }

  // Per-study lease counts, read through the protocol — the loop thread
  // owns the service, so the test observes it via list_studies only.
  const auto active_leases = [&](const std::string& study) -> std::int64_t {
    Json list = JsonObject{};
    list.Set("type", Json("list_studies"));
    const auto reply = client.Send(list, 0);
    HT_CHECK(reply.has_value());
    for (const Json& entry : reply->at("studies").AsArray()) {
      if (entry.at("study").AsString() == study) {
        return entry.at("active_leases").AsInt();
      }
    }
    return -1;
  };

  // The idle timer expires the running study's lease in a few ticks...
  ASSERT_TRUE(WaitFor([&] { return active_leases("running") == 0; }));
  // ...while the suspended study's lease outlives many more ticks.
  const std::size_t ticks = net.stats().timer_ticks;
  ASSERT_TRUE(WaitFor([&] { return net.stats().timer_ticks >= ticks + 10; }));
  EXPECT_EQ(active_leases("frozen"), 1);

  // Resume: the deadline shifts by the pause, so the wall clock catches up
  // with it shortly after and the timer finally expires it.
  Json resume = JsonObject{};
  resume.Set("type", Json("resume_study"));
  resume.Set("study", Json("frozen"));
  const auto reply = client.Send(resume, 0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->at("type").AsString(), "ack");
  EXPECT_TRUE(WaitFor([&] { return active_leases("frozen") == 0; }));

  net.Stop();
  TuningServer* frozen = manager.FindServer("frozen");
  ASSERT_NE(frozen, nullptr);
  EXPECT_EQ(frozen->stats().leases_expired, 1u);
}

// --- Malformed-frame robustness ---

struct MalformedHarness {
  RandomSearchOptions options;
  RandomSearchScheduler scheduler;
  TuningServer server;
  NetServer net;

  MalformedHarness()
      : options{.R = 10},
        scheduler(MakeRandomSampler(UnitSpace()), options),
        server(scheduler, {.lease_timeout = 60}),
        net(server, {}) {
    net.Start();
  }
};

TEST(NetMalformed, BadMagicGetsErrorReplyThenClose) {
  MalformedHarness h;
  RawClient raw(h.net.port());
  raw.SendAll("XXXX garbage that is definitely not a frame header....");
  const auto reply = raw.RecvFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, WireType::kError);
  EXPECT_EQ(DecodeMessage(*reply).message.at("type").AsString(), "error");
  EXPECT_TRUE(raw.ReadToEof());  // server closed cleanly after the reply
  ASSERT_TRUE(WaitFor([&] { return h.net.stats().connections_closed >= 1; }));
  EXPECT_EQ(h.net.stats().frames_bad_magic, 1u);
}

TEST(NetMalformed, WrongVersionGetsErrorReplyThenClose) {
  MalformedHarness h;
  std::string frame = EncodeMessage(RequestJob(1), 0);
  frame[4] = static_cast<char>(kWireVersion + 1);
  RawClient raw(h.net.port());
  raw.SendAll(frame);
  const auto reply = raw.RecvFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, WireType::kError);
  EXPECT_TRUE(raw.ReadToEof());
  ASSERT_TRUE(WaitFor([&] { return h.net.stats().connections_closed >= 1; }));
  EXPECT_EQ(h.net.stats().frames_bad_version, 1u);
  // The bad frame never reached the service.
  EXPECT_EQ(h.server.stats().jobs_assigned, 0u);
}

TEST(NetMalformed, OversizedLengthGetsErrorReplyThenClose) {
  MalformedHarness h;
  WireWriter header;
  header.U32(kFrameMagic);
  header.U16(kWireVersion);
  header.U16(static_cast<std::uint16_t>(WireType::kRequestJob));
  header.U32(kMaxFramePayload + 1);
  header.U32(0);
  RawClient raw(h.net.port());
  raw.SendAll(header.bytes());
  const auto reply = raw.RecvFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, WireType::kError);
  EXPECT_TRUE(raw.ReadToEof());
  ASSERT_TRUE(WaitFor([&] { return h.net.stats().frames_oversized >= 1; }));
  EXPECT_EQ(h.net.stats().frames_oversized, 1u);
}

TEST(NetMalformed, CrcMismatchSkipsFrameAndConnectionSurvives) {
  MalformedHarness h;
  std::string corrupt = EncodeMessage(Report(1, 99, 0.5), 0);
  corrupt.back() ^= 0x01;
  RawClient raw(h.net.port());
  raw.SendAll(corrupt + EncodeMessage(RequestJob(1), 1.0));
  // First reply: the error for the corrupt frame. Second: a real job grant
  // on the SAME connection — the stream stayed framed.
  const auto error_reply = raw.RecvFrame();
  ASSERT_TRUE(error_reply.has_value());
  EXPECT_EQ(error_reply->type, WireType::kError);
  const auto job_reply = raw.RecvFrame();
  ASSERT_TRUE(job_reply.has_value());
  EXPECT_EQ(job_reply->type, WireType::kJob);
  EXPECT_EQ(h.net.stats().frames_bad_crc, 1u);
  EXPECT_EQ(h.net.stats().messages_handled, 1u);
  EXPECT_EQ(h.net.stats().messages_rejected, 1u);
  EXPECT_EQ(h.net.stats().connections_closed, 0u);
}

TEST(NetMalformed, TruncatedTailIsAccountedOnDisconnect) {
  MalformedHarness h;
  const std::string frame = EncodeMessage(RequestJob(1), 0);
  {
    RawClient raw(h.net.port());
    raw.SendAll(std::string_view(frame).substr(0, frame.size() - 3));
    // Wait until the bytes reached the loop before cutting the connection,
    // or the truncation could race the close.
    ASSERT_TRUE(
        WaitFor([&] { return h.net.stats().connections_accepted >= 1; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(WaitFor([&] { return h.net.stats().frames_truncated >= 1; }));
  EXPECT_EQ(h.net.stats().messages_handled, 0u);
}

TEST(NetMalformed, UnknownFrameTypeRejectedConnectionSurvives) {
  MalformedHarness h;
  WireWriter payload;
  payload.F64(0.0);  // well-formed `now`, bogus type
  RawClient raw(h.net.port());
  raw.SendAll(EncodeFrame(static_cast<WireType>(999), payload.bytes()));
  const auto error_reply = raw.RecvFrame();
  ASSERT_TRUE(error_reply.has_value());
  EXPECT_EQ(error_reply->type, WireType::kError);
  // Framing was fine, so the connection lives: a valid request still works.
  raw.SendAll(EncodeMessage(RequestJob(1), 1.0));
  const auto job_reply = raw.RecvFrame();
  ASSERT_TRUE(job_reply.has_value());
  EXPECT_EQ(job_reply->type, WireType::kJob);
  EXPECT_EQ(h.net.stats().messages_rejected, 1u);
  EXPECT_EQ(h.net.stats().connections_closed, 0u);
}

TEST(NetMalformed, UnparseableJsonLineRejectedConnectionSurvives) {
  MalformedHarness h;
  RawClient raw(h.net.port());
  raw.SendAll("{this is not json\n");
  const auto error_line = raw.RecvLine();
  ASSERT_TRUE(error_line.has_value());
  EXPECT_EQ(DecodeJsonLine(*error_line).message.at("type").AsString(),
            "error");
  raw.SendAll(EncodeJsonLine(RequestJob(1), 1.0));
  const auto job_line = raw.RecvLine();
  ASSERT_TRUE(job_line.has_value());
  EXPECT_EQ(DecodeJsonLine(*job_line).message.at("type").AsString(), "job");
  EXPECT_EQ(h.net.stats().messages_rejected, 1u);
  EXPECT_EQ(h.net.stats().connections_closed, 0u);
}

TEST(NetMalformed, TelemetryCountsFrameErrors) {
  Telemetry telemetry;
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});
  NetServerOptions net_options;
  net_options.telemetry = &telemetry;
  NetServer net(server, net_options);
  net.Start();
  {
    RawClient raw(net.port());
    raw.SendAll("ZZZZZZZZZZZZZZZZ");
    EXPECT_TRUE(raw.ReadToEof());
  }
  ASSERT_TRUE(WaitFor([&] { return net.stats().frames_bad_magic >= 1; }));
  net.Stop();
  EXPECT_EQ(telemetry.metrics().counter("net.frame_bad_magic").value(), 1);
  EXPECT_EQ(telemetry.metrics().counter("server.malformed_frames").value(), 1);
  EXPECT_EQ(telemetry.metrics().counter("net.messages_rejected").value(), 1);
}

// --- Graceful shutdown -> worker backoff ---

TEST(NetShutdown, StopDrainsAndWorkersEnterBackoff) {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.max_trials = 40;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 30});
  NetServerOptions net_options;
  net_options.clock = NetClock::kMessage;
  NetServer net(server, net_options);
  net.Start();

  NetWorkerClient client("127.0.0.1", net.port());
  RankEnv env;
  SimulatedWorker worker(1, env, /*heartbeat_interval=*/5);
  worker.OnTick(client, 0);  // leases a job, starts training
  EXPECT_TRUE(worker.IsTraining());
  EXPECT_TRUE(client.connected());

  net.Stop();  // graceful: workers see EOF, not a hung socket

  // The next exchange fails; the worker books a retry and backs off —
  // exactly the PR-5 reconnect path.
  worker.OnTick(client, worker.next_action_time());
  EXPECT_GT(worker.retries(), 0u);
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.Send(RequestJob(1), 100), std::nullopt);
  EXPECT_GE(net.stats().connections_closed, 1u);
}

TEST(NetShutdown, StopIsIdempotentAndDestructorSafe) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});
  NetServer net(server, {});
  EXPECT_GT(net.port(), 0);  // ephemeral port resolved at bind time
  net.Start();
  net.Stop();
  net.Stop();  // second Stop is a no-op; destructor will Stop again
}

// --- Concurrency: many client threads, one loop, one service ---

// --- Hardening: accept shedding, slow-client eviction, overload shed ---

TEST(NetHardening, AcceptsAreShedAtMaxConnections) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), {.R = 10});
  TuningServer server(scheduler, {.lease_timeout = 30});
  NetServerOptions options;
  options.max_connections = 1;
  NetServer net(server, options);
  net.Start();

  RawClient first(net.port());
  first.SendAll(EncodeMessage(RequestJob(1), 0));
  ASSERT_TRUE(first.RecvFrame().has_value());  // registered as the one slot

  // Second connection is over the cap: closed immediately, never served.
  RawClient second(net.port());
  EXPECT_TRUE(second.ReadToEof());
  EXPECT_TRUE(WaitFor([&] { return net.stats().connections_shed >= 1; }));
  EXPECT_EQ(net.stats().connections_accepted, 1u);

  // The surviving connection still works.
  first.SendAll(EncodeMessage(RequestJob(1), 1));
  const auto frame = first.RecvFrame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_NE(frame->type, WireType::kError);

  net.Stop();
}

/// SocketIo whose sends always fail with EAGAIN — from the server's side
/// the client never drains its socket, so replies pile up in the outbuf.
class SendBlockedIo final : public SocketIo {
 public:
  ssize_t Send(int, const void*, std::size_t) override {
    errno = EAGAIN;
    return -1;
  }
  ssize_t Recv(int fd, void* data, std::size_t size) override {
    return SocketIo::Real().Recv(fd, data, size);
  }
};

TEST(NetHardening, SlowClientsAreEvictedAtTheOutbufCap) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), {.R = 10});
  TuningServer server(scheduler, {.lease_timeout = 30});
  SendBlockedIo blocked;
  NetServerOptions options;
  options.max_outbuf_bytes = 16;  // any job reply busts this
  options.io = &blocked;
  NetServer net(server, options);
  net.Start();

  RawClient client(net.port());
  client.SendAll(EncodeMessage(RequestJob(1), 0));
  // The reply can't flush, exceeds the cap, and the connection is evicted
  // (closed) rather than buffering without bound.
  EXPECT_TRUE(client.ReadToEof());
  EXPECT_TRUE(WaitFor([&] { return net.stats().slow_clients_evicted >= 1; }));
  EXPECT_TRUE(WaitFor([&] { return net.stats().connections_closed >= 1; }));

  net.Stop();
}

/// Wraps a service and stalls HandleMessage on demand — the loop thread
/// falls behind its tick schedule, which is what trips overload shedding.
class StallService final : public MessageService {
 public:
  explicit StallService(MessageService& inner) : inner_(inner) {}

  Json HandleMessage(const Json& message, double now) override {
    const int ms = stall_ms.load();
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return inner_.HandleMessage(message, now);
  }
  void Tick(double now) override { inner_.Tick(now); }

  std::atomic<int> stall_ms{0};

 private:
  MessageService& inner_;
};

TEST(NetHardening, OverloadShedsGrantsUntilTheLoopCatchesUp) {
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), {.R = 10});
  TuningServer server(scheduler, {.lease_timeout = 30});
  StallService stalled(server);
  NetServerOptions options;
  options.tick_interval = 0.02;
  options.overload_shed_lag = 0.01;
  options.shed_retry_after = 9.5;
  NetServer net(stalled, options);
  net.Start();

  RawClient client(net.port());

  // Each stalled message delays poll past the tick deadline, opening a
  // shed window roughly one tick_interval long — loop until a grant
  // request lands inside one.
  stalled.stall_ms = 30;
  bool shed = false;
  for (int i = 0; i < 100 && !shed; ++i) {
    client.SendAll(EncodeMessage(RequestJob(1), i));
    const auto frame = client.RecvFrame();
    ASSERT_TRUE(frame.has_value());
    const Json reply = DecodeMessage(*frame).message;
    if (!reply.Has("shed")) continue;
    shed = true;
    EXPECT_EQ(frame->type, WireType::kNoJobFlagged);
    EXPECT_EQ(reply.at("type").AsString(), "no_job");
    EXPECT_TRUE(reply.at("shed").AsBool());
    EXPECT_DOUBLE_EQ(reply.at("retry_after").AsDouble(), 9.5);
  }
  ASSERT_TRUE(shed);
  EXPECT_GE(net.stats().requests_shed, 1u);

  // Once the stall clears and a tick lands on time, grants flow again.
  stalled.stall_ms = 0;
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    client.SendAll(EncodeMessage(RequestJob(1), 1000 + i));
    const auto frame = client.RecvFrame();
    ASSERT_TRUE(frame.has_value());
    recovered = frame->type == WireType::kJob ||
                frame->type == WireType::kNoJob;
  }
  EXPECT_TRUE(recovered);

  net.Stop();
}

TEST(NetConcurrency, ParallelClientsSerializeOntoOneService) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});
  NetServer net(server, {});
  net.Start();

  constexpr int kThreads = 4;
  constexpr int kCycles = 25;
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Odd threads speak JSON, even threads binary — both transports hit
      // the same loop at once.
      NetClientOptions client_options;
      client_options.transport =
          t % 2 == 0 ? WireTransport::kBinary : WireTransport::kJson;
      NetWorkerClient client("127.0.0.1", net.port(), client_options);
      for (int i = 0; i < kCycles; ++i) {
        const auto reply =
            client.Send(RequestJob(static_cast<std::uint64_t>(t)), i);
        if (!reply || reply->at("type").AsString() != "job") continue;
        const auto ack = client.Send(
            Report(static_cast<std::uint64_t>(t),
                   reply->at("job_id").AsInt(), 0.5),
            i + 0.5);
        if (ack && ack->at("type").AsString() == "ack") ++completed;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  net.Stop();

  EXPECT_EQ(completed.load(), kThreads * kCycles);
  EXPECT_EQ(server.stats().jobs_completed,
            static_cast<std::size_t>(kThreads * kCycles));
  EXPECT_EQ(net.stats().messages_handled,
            static_cast<std::size_t>(2 * kThreads * kCycles));
  EXPECT_GE(net.stats().connections_accepted,
            static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace hypertune
