// The binary wire layer: frame encode/decode, the five malformed-frame
// error kinds, and the lossless JSON <-> binary codec over the full lease
// protocol vocabulary (DESIGN.md §8).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "net/codec.h"
#include "net/wire.h"

namespace hypertune {
namespace {

std::string Framed(WireType type, std::string_view payload) {
  return EncodeFrame(type, payload);
}

TEST(FrameRoundTrip, EncodeThenDecode) {
  FrameDecoder decoder;
  decoder.Feed(Framed(WireType::kReport, "hello"));
  const auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, WireType::kReport);
  EXPECT_EQ(frame->payload, "hello");
  EXPECT_EQ(decoder.error(), FrameError::kNone);
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameRoundTrip, ByteAtATimeFeedStillFrames) {
  const std::string bytes = Framed(WireType::kAck, "payload-bytes") +
                            Framed(WireType::kError, "second");
  FrameDecoder decoder;
  std::vector<WireFrame> frames;
  for (const char byte : bytes) {
    decoder.Feed(std::string_view(&byte, 1));
    while (auto frame = decoder.Next()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "payload-bytes");
  EXPECT_EQ(frames[1].payload, "second");
}

TEST(FrameErrors, BadMagicPoisons) {
  FrameDecoder decoder;
  std::string bytes = Framed(WireType::kAck, "x");
  bytes[0] = 'Z';
  decoder.Feed(bytes);
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kBadMagic);
  EXPECT_TRUE(decoder.poisoned());
  // Poisoned streams never recover, even with a valid frame appended.
  decoder.ClearError();
  decoder.Feed(Framed(WireType::kAck, "y"));
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameErrors, WrongVersionPoisons) {
  std::string bytes = Framed(WireType::kAck, "x");
  bytes[4] = static_cast<char>(kWireVersion + 1);  // version low byte
  FrameDecoder decoder;
  decoder.Feed(bytes);
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kBadVersion);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameErrors, OversizedLengthPoisons) {
  WireWriter header;
  header.U32(kFrameMagic);
  header.U16(kWireVersion);
  header.U16(static_cast<std::uint16_t>(WireType::kAck));
  header.U32(kMaxFramePayload + 1);
  header.U32(0);
  FrameDecoder decoder;
  decoder.Feed(header.bytes());
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kOversized);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameErrors, CrcMismatchIsRecoverable) {
  std::string bytes = Framed(WireType::kReport, "payload");
  bytes.back() ^= 0x01;  // flip a payload bit; header CRC no longer matches
  bytes += Framed(WireType::kAck, "intact");
  FrameDecoder decoder;
  decoder.Feed(bytes);
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kBadCrc);
  EXPECT_FALSE(decoder.poisoned());
  decoder.ClearError();
  // The corrupt frame was skipped; the stream is still framed.
  const auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "intact");
}

TEST(FrameErrors, TruncatedTailDetectedAtEof) {
  const std::string bytes = Framed(WireType::kReport, "long-payload-here");
  FrameDecoder decoder;
  decoder.Feed(std::string_view(bytes).substr(0, bytes.size() - 3));
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kNone);  // just waiting so far
  decoder.Finish();
  EXPECT_EQ(decoder.error(), FrameError::kTruncated);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameErrors, CleanEofIsNotTruncation) {
  FrameDecoder decoder;
  decoder.Feed(Framed(WireType::kAck, "x"));
  ASSERT_TRUE(decoder.Next().has_value());
  decoder.Finish();
  EXPECT_EQ(decoder.error(), FrameError::kNone);
}

// --- Codec: the full protocol vocabulary round-trips bit-identically ---

Json MakeConfig(Rng& rng) {
  Json config = JsonObject{};
  config.Set("lr", Json(rng.Uniform() * 0.1));
  if (rng.Uniform() < 0.7) {
    config.Set("layers", Json(static_cast<std::int64_t>(
                             1 + static_cast<int>(rng.Uniform() * 8))));
  }
  if (rng.Uniform() < 0.5) {
    config.Set("activation", Json(rng.Uniform() < 0.5 ? "relu" : "tanh"));
  }
  return config;
}

Json MakeJob(Rng& rng, std::int64_t trial) {
  Json job = JsonObject{};
  job.Set("trial", Json(trial));
  job.Set("config", MakeConfig(rng));
  job.Set("from", Json(rng.Uniform() * 10));
  job.Set("to", Json(rng.Uniform() * 100));
  job.Set("rung", Json(static_cast<std::int64_t>(rng.Uniform() * 5)));
  job.Set("bracket", Json(static_cast<std::int64_t>(rng.Uniform() * 3)));
  job.Set("tag", Json(static_cast<std::int64_t>(rng.Uniform() * 1e6)));
  return job;
}

/// Every message kind the protocol can put on the wire, with randomized
/// field values (including the optional-field variants).
std::vector<Json> ProtocolSamples(Rng& rng) {
  std::vector<Json> samples;
  {
    Json m = JsonObject{};
    m.Set("type", Json("request_job"));
    m.Set("worker", Json(static_cast<std::int64_t>(rng.Uniform() * 1000)));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("request_jobs"));
    m.Set("worker", Json(static_cast<std::int64_t>(rng.Uniform() * 1000)));
    m.Set("count", Json(static_cast<std::int64_t>(1 + rng.Uniform() * 64)));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("heartbeat"));
    m.Set("worker", Json(static_cast<std::int64_t>(rng.Uniform() * 1000)));
    m.Set("job_id", Json(static_cast<std::int64_t>(rng.Uniform() * 1e6)));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("report"));
    m.Set("worker", Json(static_cast<std::int64_t>(rng.Uniform() * 1000)));
    m.Set("job_id", Json(static_cast<std::int64_t>(rng.Uniform() * 1e6)));
    m.Set("loss", Json(rng.Normal()));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("job"));
    m.Set("job_id", Json(static_cast<std::int64_t>(rng.Uniform() * 1e6)));
    m.Set("job", MakeJob(rng, static_cast<std::int64_t>(rng.Uniform() * 500)));
    m.Set("lease_timeout", Json(30.0 + rng.Uniform()));
    samples.push_back(std::move(m));
  }
  {
    // Batched grant, with and without the short-fill retry hint.
    for (const bool short_fill : {false, true}) {
      Json m = JsonObject{};
      m.Set("type", Json("jobs"));
      Json jobs = JsonArray{};
      const int count = 1 + static_cast<int>(rng.Uniform() * 5);
      for (int i = 0; i < count; ++i) {
        Json entry = JsonObject{};
        entry.Set("job_id",
                  Json(static_cast<std::int64_t>(rng.Uniform() * 1e6)));
        entry.Set("job", MakeJob(rng, i));
        jobs.PushBack(std::move(entry));
      }
      m.Set("jobs", std::move(jobs));
      m.Set("lease_timeout", Json(30.0));
      if (short_fill) m.Set("retry_after", Json(7.5));
      samples.push_back(std::move(m));
    }
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("no_job"));
    m.Set("retry_after", Json(rng.Uniform() * 20));
    samples.push_back(std::move(m));
  }
  {
    // Overload shedding denial: the appended kNoJobFlagged payload.
    Json m = JsonObject{};
    m.Set("type", Json("no_job"));
    m.Set("retry_after", Json(1.0));
    m.Set("shed", Json(true));
    samples.push_back(std::move(m));
  }
  {
    // Degraded read-only denial (DurableServer with an unwritable journal).
    Json m = JsonObject{};
    m.Set("type", Json("no_job"));
    m.Set("retry_after", Json(5.0));
    m.Set("degraded", Json(true));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("ack"));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("ack"));
    m.Set("stale", Json(true));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("lease_lost"));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("error"));
    m.Set("message", Json("report missing its loss — \"quoted\" & unicode Ω"));
    samples.push_back(std::move(m));
  }

  // --- Multi-tenant vocabulary (DESIGN.md §11): study-scoped lease
  // messages, the admin verbs, and the study-bearing replies. ---
  const std::string study_name =
      rng.Uniform() < 0.5 ? "prod.resnet-50" : "user_7-dev";
  {
    Json m = JsonObject{};
    m.Set("type", Json("request_job"));
    m.Set("worker", Json(static_cast<std::int64_t>(rng.Uniform() * 1000)));
    m.Set("study", Json(study_name));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("request_jobs"));
    m.Set("worker", Json(static_cast<std::int64_t>(rng.Uniform() * 1000)));
    m.Set("count", Json(static_cast<std::int64_t>(1 + rng.Uniform() * 64)));
    m.Set("study", Json(study_name));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("heartbeat"));
    m.Set("worker", Json(static_cast<std::int64_t>(rng.Uniform() * 1000)));
    m.Set("job_id", Json(static_cast<std::int64_t>(rng.Uniform() * 1e6)));
    m.Set("study", Json(study_name));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("report"));
    m.Set("worker", Json(static_cast<std::int64_t>(rng.Uniform() * 1000)));
    m.Set("job_id", Json(static_cast<std::int64_t>(rng.Uniform() * 1e6)));
    m.Set("loss", Json(rng.Normal()));
    m.Set("study", Json(study_name));
    samples.push_back(std::move(m));
  }
  {
    // create_study with and without an explicit quota.
    for (const bool has_quota : {false, true}) {
      Json m = JsonObject{};
      m.Set("type", Json("create_study"));
      m.Set("study", Json(study_name));
      m.Set("config", MakeConfig(rng));
      if (has_quota) {
        m.Set("max_leases",
              Json(static_cast<std::int64_t>(rng.Uniform() * 64)));
      }
      samples.push_back(std::move(m));
    }
  }
  for (const char* verb : {"suspend_study", "resume_study", "delete_study"}) {
    Json m = JsonObject{};
    m.Set("type", Json(verb));
    m.Set("study", Json(study_name));
    samples.push_back(std::move(m));
  }
  {
    Json m = JsonObject{};
    m.Set("type", Json("list_studies"));
    samples.push_back(std::move(m));
  }
  {
    // The list_studies table, including the empty-server case.
    const int count = static_cast<int>(rng.Uniform() * 4);
    Json m = JsonObject{};
    m.Set("type", Json("studies"));
    Json studies = JsonArray{};
    for (int i = 0; i < count; ++i) {
      Json entry = JsonObject{};
      entry.Set("study", Json("study-" + std::to_string(i)));
      entry.Set("state", Json(rng.Uniform() < 0.5 ? "suspended" : "active"));
      entry.Set("max_leases",
                Json(static_cast<std::int64_t>(rng.Uniform() * 16)));
      entry.Set("active_leases",
                Json(static_cast<std::int64_t>(rng.Uniform() * 8)));
      entry.Set("jobs_assigned",
                Json(static_cast<std::int64_t>(rng.Uniform() * 500)));
      entry.Set("jobs_completed",
                Json(static_cast<std::int64_t>(rng.Uniform() * 500)));
      studies.PushBack(std::move(entry));
    }
    m.Set("studies", std::move(studies));
    samples.push_back(std::move(m));
  }
  {
    // Study-bearing single grant (the "*" fair-allocation reply).
    Json m = JsonObject{};
    m.Set("type", Json("job"));
    m.Set("job_id", Json(static_cast<std::int64_t>(rng.Uniform() * 1e6)));
    m.Set("job", MakeJob(rng, static_cast<std::int64_t>(rng.Uniform() * 500)));
    m.Set("lease_timeout", Json(30.0 + rng.Uniform()));
    m.Set("study", Json(study_name));
    samples.push_back(std::move(m));
  }
  {
    // Study-bearing batched grant, with and without the retry hint.
    for (const bool short_fill : {false, true}) {
      Json m = JsonObject{};
      m.Set("type", Json("jobs"));
      Json jobs = JsonArray{};
      const int count = 1 + static_cast<int>(rng.Uniform() * 5);
      for (int i = 0; i < count; ++i) {
        Json entry = JsonObject{};
        entry.Set("job_id",
                  Json(static_cast<std::int64_t>(rng.Uniform() * 1e6)));
        entry.Set("job", MakeJob(rng, i));
        entry.Set("study", Json("study-" + std::to_string(i % 3)));
        jobs.PushBack(std::move(entry));
      }
      m.Set("jobs", std::move(jobs));
      m.Set("lease_timeout", Json(30.0));
      if (short_fill) m.Set("retry_after", Json(7.5));
      samples.push_back(std::move(m));
    }
  }
  return samples;
}

TEST(WireCodecProperty, EveryMessageRoundTripsBitIdentically) {
  for (const std::uint64_t seed : {1ull, 42ull, 1000ull, 7777ull}) {
    Rng rng(seed);
    for (int round = 0; round < 25; ++round) {
      const double now = rng.Uniform() * 2000;
      for (const Json& message : ProtocolSamples(rng)) {
        const std::string framed = EncodeMessage(message, now);
        FrameDecoder decoder;
        decoder.Feed(framed);
        const auto frame = decoder.Next();
        ASSERT_TRUE(frame.has_value());
        const WireMessage decoded = DecodeMessage(*frame);
        EXPECT_EQ(decoded.now, now);
        // Bit-identity: same fields, same order, same int-vs-double
        // storage — Dump() equality is the strictest observable check.
        EXPECT_EQ(decoded.message, message);
        EXPECT_EQ(decoded.message.Dump(), message.Dump());
      }
    }
  }
}

TEST(WireCodec, BinaryIsCompacterThanJson) {
  Rng rng(3);
  for (const Json& message : ProtocolSamples(rng)) {
    EXPECT_LT(EncodeMessage(message, 1.0).size(),
              EncodeJsonLine(message, 1.0).size())
        << message.Dump();
  }
}

TEST(WireCodec, JsonLineEnvelopeRoundTrips) {
  Rng rng(9);
  for (const Json& message : ProtocolSamples(rng)) {
    const std::string line = EncodeJsonLine(message, 123.25);
    ASSERT_EQ(line.back(), '\n');
    const WireMessage decoded =
        DecodeJsonLine(std::string_view(line).substr(0, line.size() - 1));
    EXPECT_EQ(decoded.now, 123.25);
    // Text transit may legally shift integral doubles to int storage; the
    // numeric values and field order must survive exactly.
    EXPECT_EQ(decoded.message.at("type").AsString(),
              message.at("type").AsString());
    EXPECT_EQ(decoded.message.AsObject().size(), message.AsObject().size());
  }
}

TEST(WireCodec, RejectsMessagesOutsideTheSchema) {
  Json unknown = JsonObject{};
  unknown.Set("type", Json("subscribe"));
  EXPECT_THROW(EncodeMessage(unknown, 0), CheckError);

  Json extra = JsonObject{};
  extra.Set("type", Json("request_job"));
  extra.Set("worker", Json(std::int64_t{1}));
  extra.Set("smuggled", Json("field"));
  EXPECT_THROW(EncodeMessage(extra, 0), CheckError);

  Json missing = JsonObject{};
  missing.Set("type", Json("report"));
  missing.Set("worker", Json(std::int64_t{1}));
  missing.Set("job_id", Json(std::int64_t{2}));
  missing.Set("extra", Json(1));  // right arity, wrong field
  EXPECT_THROW(EncodeMessage(missing, 0), CheckError);

  // The no_job flags are presence-only: a false value would not survive
  // the round trip, so the encoder refuses it outright.
  Json false_flag = JsonObject{};
  false_flag.Set("type", Json("no_job"));
  false_flag.Set("retry_after", Json(1.0));
  false_flag.Set("shed", Json(false));
  EXPECT_THROW(EncodeMessage(false_flag, 0), CheckError);
}

TEST(WireCodec, RejectsTrailingPayloadBytes) {
  Json m = JsonObject{};
  m.Set("type", Json("ack"));
  const std::string framed = EncodeMessage(m, 0);
  // Rebuild the frame with one smuggled byte appended to the payload.
  const std::string payload =
      framed.substr(kFrameHeaderSize) + std::string(1, '\0');
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(WireType::kAck, payload));
  const auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_THROW(DecodeMessage(*frame), CheckError);
}

TEST(WireWriterReader, PrimitivesRoundTripAtBoundaries) {
  WireWriter writer;
  writer.U8(0xFF);
  writer.U16(0xFFFF);
  writer.U32(0xFFFFFFFFu);
  writer.U64(0xFFFFFFFFFFFFFFFFull);
  writer.I64(-1);
  writer.F64(-0.0);
  writer.ShortString("");
  writer.String("abc");
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.U8(), 0xFF);
  EXPECT_EQ(reader.U16(), 0xFFFF);
  EXPECT_EQ(reader.U32(), 0xFFFFFFFFu);
  EXPECT_EQ(reader.U64(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(reader.I64(), -1);
  const double negative_zero = reader.F64();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));
  EXPECT_EQ(reader.ShortString(), "");
  EXPECT_EQ(reader.String(), "abc");
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_THROW(reader.U8(), CheckError);
}

}  // namespace
}  // namespace hypertune
