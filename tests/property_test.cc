// Property-style parameterized suites: invariants of the successive-halving
// family swept over (eta, s, workers, resume) grids.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/asha.h"
#include "core/sha.h"
#include "sim/driver.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

/// Loss = x (stable ranking); duration = increment.
class RankEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    // Mildly resource-dependent but rank-preserving.
    return config.GetDouble("x") * (1.0 + 1.0 / resource);
  }
  double Duration(const Configuration& config, Resource from,
                  Resource to) override {
    (void)config;
    return to - from;
  }
};

struct AshaParams {
  double eta;
  int s;
  int workers;
  bool resume;
};

class AshaInvariants : public testing::TestWithParam<AshaParams> {};

TEST_P(AshaInvariants, RungStructureAndPromotionLaws) {
  const auto params = GetParam();
  AshaOptions options;
  options.r = 1;
  options.R = std::pow(params.eta, 4);  // 5 rungs at s=0
  options.eta = params.eta;
  options.s = params.s;
  options.resume_from_checkpoint = params.resume;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  RankEnv env;
  DriverOptions driver_options;
  driver_options.num_workers = params.workers;
  driver_options.time_limit = 60.0 * options.R;
  SimulationDriver driver(asha, env, driver_options);
  const auto result = driver.Run();
  ASSERT_GT(result.jobs_completed, 50u);

  const int num_rungs = static_cast<int>(asha.NumRungs());
  for (int k = 0; k + 1 < num_rungs; ++k) {
    const auto& lower = asha.rung(static_cast<std::size_t>(k));
    const auto& upper = asha.rung(static_cast<std::size_t>(k + 1));
    // Promotions out of rung k track floor(|rung k| / eta) up to ASHA's
    // mispromotions: trials promoted early can drop out of the top 1/eta as
    // better configs arrive. Section 3.3 argues the excess is O(sqrt(n));
    // assert that bound with a 2x constant.
    const auto recorded = static_cast<double>(lower.NumRecorded());
    EXPECT_LE(static_cast<double>(lower.NumPromoted()),
              std::floor(recorded / params.eta) + 2.0 * std::sqrt(recorded) +
                  2.0);
    // ...and everything recorded in rung k+1 was promoted from rung k.
    EXPECT_LE(upper.NumRecorded(), lower.NumPromoted());
  }

  // Per-trial resource monotonicity and observation consistency.
  for (const auto& trial : asha.trials()) {
    double prev = 0;
    for (const auto& ob : trial.observations) {
      EXPECT_GT(ob.resource, prev);
      prev = ob.resource;
    }
  }

  // Jobs never exceed R in the finite horizon.
  for (const auto& completion : result.completions) {
    EXPECT_LE(completion.to_resource, options.R + 1e-9);
  }
}

TEST_P(AshaInvariants, PromotedTrialsAreTopOfTheirRung) {
  const auto params = GetParam();
  AshaOptions options;
  options.r = 1;
  options.R = std::pow(params.eta, 3);
  options.eta = params.eta;
  options.s = params.s > 1 ? 1 : params.s;
  options.resume_from_checkpoint = params.resume;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  RankEnv env;
  DriverOptions driver_options;
  driver_options.num_workers = params.workers;
  driver_options.time_limit = 30.0 * options.R;
  SimulationDriver driver(asha, env, driver_options);
  (void)driver.Run();

  // Every promoted trial was, at promotion time, among the best of its
  // rung. Ex-post we can still assert a weaker law: the best never-promoted
  // loss is not better than *every* promoted loss (no systematic inversion).
  for (std::size_t k = 0; k + 1 < asha.NumRungs(); ++k) {
    const auto& rung = asha.rung(k);
    if (rung.NumPromoted() == 0 || rung.NumRecorded() < 4) continue;
    double worst_promoted = -1e18;
    double best_unpromoted = 1e18;
    for (const auto& [loss, id] : rung.results()) {
      if (rung.IsPromoted(id)) {
        worst_promoted = std::max(worst_promoted, loss);
      } else {
        best_unpromoted = std::min(best_unpromoted, loss);
      }
    }
    // With a stable ranking env, inversions can only come from late
    // arrivals; the *best* unpromoted config can be better than the worst
    // promoted one, but not by more than the rung's full loss range.
    EXPECT_GE(best_unpromoted, 0.0);
    EXPECT_GE(worst_promoted, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AshaInvariants,
    testing::Values(AshaParams{2, 0, 1, true}, AshaParams{2, 0, 8, true},
                    AshaParams{3, 0, 4, true}, AshaParams{3, 1, 4, true},
                    AshaParams{4, 0, 1, false}, AshaParams{4, 0, 16, true},
                    AshaParams{4, 1, 16, false}, AshaParams{2, 1, 2, false}),
    [](const testing::TestParamInfo<AshaParams>& info) {
      const auto& p = info.param;
      return "eta" + std::to_string(static_cast<int>(p.eta)) + "_s" +
             std::to_string(p.s) + "_w" + std::to_string(p.workers) +
             (p.resume ? "_resume" : "_scratch");
    });

struct ShaParams {
  std::size_t n;
  double eta;
  int s;
  int workers;
};

class ShaInvariants : public testing::TestWithParam<ShaParams> {};

TEST_P(ShaInvariants, SingleBracketMatchesGeometryExactly) {
  const auto params = GetParam();
  ShaOptions options;
  options.n = params.n;
  options.r = 1;
  options.R = std::pow(params.eta, 3);
  options.eta = params.eta;
  options.s = params.s;
  options.spawn_new_brackets = false;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  RankEnv env;
  DriverOptions driver_options;
  driver_options.num_workers = params.workers;
  SimulationDriver driver(sha, env, driver_options);
  const auto result = driver.Run();

  EXPECT_TRUE(sha.Finished());
  const auto sizes = sha.geometry().RungSizes(params.n);
  std::map<int, std::size_t> jobs_per_rung;
  for (const auto& completion : result.completions) {
    ++jobs_per_rung[completion.rung];
  }
  for (int k = 0; k < sha.geometry().NumRungs(); ++k) {
    EXPECT_EQ(jobs_per_rung[k], sizes[static_cast<std::size_t>(k)])
        << "rung " << k;
  }
  // Dispatched resource equals the analytic bracket budget.
  EXPECT_NEAR(sha.ResourceDispatched(),
              sha.geometry().TotalBudget(params.n,
                                         options.resume_from_checkpoint),
              1e-6);
  // Work conservation: busy time == dispatched resource (unit cost env).
  EXPECT_NEAR(result.busy_time, sha.ResourceDispatched(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShaInvariants,
    testing::Values(ShaParams{8, 2, 0, 1}, ShaParams{8, 2, 0, 4},
                    ShaParams{27, 3, 0, 9}, ShaParams{27, 3, 1, 3},
                    ShaParams{64, 4, 0, 8}, ShaParams{16, 2, 1, 2},
                    ShaParams{9, 3, 2, 5}),
    [](const testing::TestParamInfo<ShaParams>& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.n) + "_eta" +
             std::to_string(static_cast<int>(p.eta)) + "_s" +
             std::to_string(p.s) + "_w" + std::to_string(p.workers);
    });

struct HazardParams {
  double straggler_std;
  double drop_probability;
};

class HazardRobustness : public testing::TestWithParam<HazardParams> {};

TEST_P(HazardRobustness, AshaCompletesAtLeastAsManyFullTrainingsAsSha) {
  // Figures 7-8 in miniature: under stragglers/drops ASHA should train at
  // least as many configurations to R as synchronous SHA.
  const auto params = GetParam();
  auto count_full = [&](Scheduler& scheduler) {
    RankEnv env;
    DriverOptions options;
    options.num_workers = 16;
    options.time_limit = 600;
    options.hazards.straggler_std = params.straggler_std;
    options.hazards.drop_probability = params.drop_probability;
    SimulationDriver driver(scheduler, env, options);
    const auto result = driver.Run();
    std::size_t full = 0;
    for (const auto& completion : result.completions) {
      full += !completion.lost && completion.to_resource >= 64.0;
    }
    return full;
  };

  AshaOptions asha_options;
  asha_options.r = 1;
  asha_options.R = 64;
  asha_options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), asha_options);

  ShaOptions sha_options;
  sha_options.n = 64;
  sha_options.r = 1;
  sha_options.R = 64;
  sha_options.eta = 4;
  sha_options.spawn_new_brackets = true;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), sha_options);

  // Allow a tolerance of one completion for low-hazard ties.
  EXPECT_GE(count_full(asha) + 1, count_full(sha));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HazardRobustness,
    testing::Values(HazardParams{0.0, 0.0}, HazardParams{0.5, 0.0},
                    HazardParams{1.33, 0.0}, HazardParams{0.0, 0.002},
                    HazardParams{0.5, 0.002}, HazardParams{1.33, 0.005}),
    [](const testing::TestParamInfo<HazardParams>& info) {
      const auto& p = info.param;
      return "std" + std::to_string(static_cast<int>(p.straggler_std * 100)) +
             "_drop" +
             std::to_string(static_cast<int>(p.drop_probability * 10000));
    });

}  // namespace
}  // namespace hypertune
