#include "registry/registry.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/driver.h"
#include "surrogate/benchmarks.h"

namespace hypertune {
namespace {

TEST(Registry, EveryListedTunerBuildsAndRuns) {
  for (const auto& name : TunerNames()) {
    auto bench = benchmarks::CifarArch(5);
    TunerParams params;
    params.n = 64;
    params.r_divisor = 64;
    params.grid_resolution = 2;
    auto tuner = MakeTunerByName(name, *bench, params);
    ASSERT_NE(tuner, nullptr) << name;

    DriverOptions options;
    options.num_workers = 4;
    options.time_limit = 2.0 * bench->MeanTimeOfR();
    SimulationDriver driver(*tuner, *bench, options);
    const auto result = driver.Run();
    EXPECT_GT(result.jobs_completed, 3u) << name;
    EXPECT_TRUE(tuner->Current().has_value()) << name;
  }
}

TEST(Registry, UnknownNameThrowsWithKnownList) {
  auto bench = benchmarks::UnitTime(1);
  try {
    MakeTunerByName("nope", *bench, {});
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    // The error message lists valid names for discoverability.
    EXPECT_NE(std::string(error.what()).find("asha"), std::string::npos);
  }
}

TEST(Registry, ParamsAreApplied) {
  auto bench = benchmarks::UnitTime(1);
  TunerParams params;
  params.eta = 2;
  params.s = 1;
  params.r_divisor = 16;
  auto tuner = MakeTunerByName("asha", *bench, params);
  const auto job = tuner->GetJob();
  ASSERT_TRUE(job.has_value());
  // r = 256/16 = 16; s=1 => bottom rung at r*eta = 32.
  EXPECT_DOUBLE_EQ(job->to_resource, 32);
  EXPECT_EQ(job->bracket, 1);
}

TEST(Registry, NonResumableBenchmarkDisablesResume) {
  auto bench = benchmarks::SvmVehicle(1);
  TunerParams params;
  params.n = 64;
  params.r_divisor = 64;
  auto tuner = MakeTunerByName("sha", *bench, params);
  // Drive one full rung to get a promotion job and check it retrains.
  std::vector<Job> jobs;
  for (int i = 0; i < 64; ++i) jobs.push_back(*tuner->GetJob());
  for (int i = 0; i < 64; ++i) {
    tuner->ReportResult(jobs[static_cast<std::size_t>(i)], 0.01 * i);
  }
  const auto promotion = tuner->GetJob();
  ASSERT_TRUE(promotion.has_value());
  EXPECT_GT(promotion->rung, 0);
  EXPECT_DOUBLE_EQ(promotion->from_resource, 0);  // full retrain
}

}  // namespace
}  // namespace hypertune
