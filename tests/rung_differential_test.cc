// Differential test: the incrementally-indexed Rung against a naive
// reference implementation, under long random interleavings of Record /
// MarkPromoted / FirstPromotable. The incremental boundary-iterator logic
// in core/rung.cc is the subtlest code in the scheduler hot path; this
// suite pins it to the obviously-correct version.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/rung.h"

namespace hypertune {
namespace {

/// The obviously-correct rung: full rescan on every query.
class ReferenceRung {
 public:
  void Record(TrialId id, double loss) { results_.emplace_back(loss, id); }

  void MarkPromoted(TrialId id) { promoted_.insert(id); }

  std::optional<TrialId> FirstPromotable(double eta) const {
    std::vector<std::pair<double, TrialId>> sorted = results_;
    std::sort(sorted.begin(), sorted.end());
    const auto k = static_cast<std::size_t>(
        static_cast<double>(sorted.size()) / eta);
    for (std::size_t i = 0; i < k; ++i) {
      if (!promoted_.contains(sorted[i].second)) return sorted[i].second;
    }
    return std::nullopt;
  }

  std::vector<TrialId> Promotable(double eta) const {
    std::vector<std::pair<double, TrialId>> sorted = results_;
    std::sort(sorted.begin(), sorted.end());
    const auto k = static_cast<std::size_t>(
        static_cast<double>(sorted.size()) / eta);
    std::vector<TrialId> out;
    for (std::size_t i = 0; i < k; ++i) {
      if (!promoted_.contains(sorted[i].second)) out.push_back(sorted[i].second);
    }
    return out;
  }

 private:
  std::vector<std::pair<double, TrialId>> results_;
  std::set<TrialId> promoted_;
};

struct FuzzParams {
  double eta;
  std::uint64_t seed;
  int steps;
  /// Probability a step promotes (via the real rung's answer) vs records.
  double promote_probability;
  /// Losses drawn from a small discrete set to force ties when true.
  bool heavy_ties;
};

class RungDifferential : public testing::TestWithParam<FuzzParams> {};

TEST_P(RungDifferential, MatchesReferenceUnderRandomOps) {
  const auto params = GetParam();
  Rng rng(params.seed);
  Rung rung;
  ReferenceRung reference;
  TrialId next_id = 0;

  for (int step = 0; step < params.steps; ++step) {
    const bool try_promote = rng.Bernoulli(params.promote_probability);
    if (try_promote) {
      const auto real = rung.FirstPromotable(params.eta);
      const auto expected = reference.FirstPromotable(params.eta);
      // The O(1) existence check must agree with the full query at every
      // interleaving point (it backs Scheduler::Finished).
      ASSERT_EQ(rung.HasPromotable(params.eta), expected.has_value())
          << "step " << step;
      // Ties in the reference sort are broken by (loss, id) just like the
      // real set ordering, so answers must agree exactly.
      ASSERT_EQ(real.has_value(), expected.has_value()) << "step " << step;
      if (real) {
        ASSERT_EQ(*real, *expected) << "step " << step;
        rung.MarkPromoted(*real);
        reference.MarkPromoted(*expected);
      }
    } else {
      const double loss =
          params.heavy_ties
              ? 0.1 * static_cast<double>(rng.UniformInt(0, 5))
              : rng.Uniform();
      rung.Record(next_id, loss);
      reference.Record(next_id, loss);
      ++next_id;
    }
    if (step % 64 == 0) {
      // Periodically compare the full promotable sets too.
      ASSERT_EQ(rung.PromotableTrials(params.eta),
                reference.Promotable(params.eta))
          << "step " << step;
    }
  }
  // Final full-state agreement.
  EXPECT_EQ(rung.PromotableTrials(params.eta),
            reference.Promotable(params.eta));
  EXPECT_EQ(rung.FirstPromotable(params.eta).has_value(),
            reference.FirstPromotable(params.eta).has_value());
  EXPECT_EQ(rung.HasPromotable(params.eta),
            reference.FirstPromotable(params.eta).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RungDifferential,
    testing::Values(FuzzParams{2.0, 1, 4000, 0.3, false},
                    FuzzParams{2.0, 2, 4000, 0.6, true},
                    FuzzParams{3.0, 3, 4000, 0.4, false},
                    FuzzParams{3.0, 4, 2000, 0.5, true},
                    FuzzParams{4.0, 5, 4000, 0.2, false},
                    FuzzParams{4.0, 6, 4000, 0.45, true},
                    FuzzParams{8.0, 7, 4000, 0.3, false},
                    FuzzParams{2.0, 8, 500, 0.05, true},
                    FuzzParams{4.0, 9, 500, 0.9, false}),
    [](const testing::TestParamInfo<FuzzParams>& info) {
      const auto& p = info.param;
      return "eta" + std::to_string(static_cast<int>(p.eta)) + "_seed" +
             std::to_string(p.seed) + (p.heavy_ties ? "_ties" : "_uniform");
    });

}  // namespace
}  // namespace hypertune
