#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/check.h"
#include "core/asha.h"
#include "core/random_search.h"
#include "core/sha.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

TEST(Executor, RunsCappedRandomSearchToCompletion) {
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = 20;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  ThreadPoolExecutor executor(
      scheduler, [](const Job& job) { return job.config.GetDouble("x"); },
      {.num_workers = 4});
  const auto result = executor.Run();
  EXPECT_EQ(result.jobs_completed, 20u);
  EXPECT_EQ(result.jobs_lost, 0u);
  EXPECT_EQ(result.records.size(), 20u);
  EXPECT_TRUE(scheduler.Finished());
  ASSERT_TRUE(scheduler.Current().has_value());
}

TEST(Executor, DrivesAshaThroughPromotions) {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.max_trials = 27;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  std::atomic<int> trained{0};
  ThreadPoolExecutor executor(
      asha,
      [&](const Job& job) {
        ++trained;
        return job.config.GetDouble("x") * (1.0 + 1.0 / job.to_resource);
      },
      {.num_workers = 8});
  const auto result = executor.Run();
  EXPECT_EQ(result.jobs_completed, static_cast<std::size_t>(trained.load()));
  EXPECT_TRUE(asha.Finished());
  // Promotions happened: some trial reached beyond the bottom rung.
  bool promoted = false;
  for (const auto& record : result.records) {
    promoted |= record.to_resource > 1.0;
  }
  EXPECT_TRUE(promoted);
}

TEST(Executor, ThrowingTrainFunctionReportsLost) {
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  std::atomic<int> count{0};
  ThreadPoolExecutor executor(
      scheduler,
      [&](const Job& job) -> double {
        if (count++ % 2 == 0) throw std::runtime_error("worker preempted");
        return job.config.GetDouble("x");
      },
      {.num_workers = 2});
  const auto result = executor.Run();
  EXPECT_EQ(result.jobs_completed + result.jobs_lost, 10u);
  EXPECT_EQ(result.jobs_lost, 5u);
  std::size_t lost_trials = 0;
  for (const auto& trial : scheduler.trials()) {
    lost_trials += trial.status == TrialStatus::kLost;
  }
  EXPECT_EQ(lost_trials, 5u);
}

TEST(Executor, MaxJobsStopsEarly) {
  RandomSearchOptions options;
  options.R = 10;  // unlimited trials
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  ThreadPoolExecutor executor(
      scheduler, [](const Job&) { return 0.5; },
      {.num_workers = 4, .max_jobs = 25});
  const auto result = executor.Run();
  // Workers already mid-job when the cap hits may still land their result.
  EXPECT_GE(result.jobs_completed, 25u);
  EXPECT_LE(result.jobs_completed, 25u + 4u);
}

TEST(Executor, WallClockBudgetStops) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  ThreadPoolExecutor executor(
      scheduler,
      [](const Job&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return 0.5;
      },
      {.num_workers = 2,
       .wall_clock_budget = std::chrono::milliseconds(120)});
  const auto result = executor.Run();
  EXPECT_GT(result.jobs_completed, 2u);
  EXPECT_LT(result.elapsed_seconds, 5.0);  // stopped, not hung
}

TEST(Executor, SynchronousBarrierParksAndResumesWorkers) {
  // 8 workers on an n=8 bracket: after dispatching rung 0, workers park at
  // the barrier; the final completion wakes them for rung-1 work.
  ShaOptions options;
  options.n = 8;
  options.r = 1;
  options.R = 4;
  options.eta = 2;
  options.spawn_new_brackets = false;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  ThreadPoolExecutor executor(
      sha,
      [](const Job& job) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return job.config.GetDouble("x");
      },
      {.num_workers = 8});
  const auto result = executor.Run();
  EXPECT_TRUE(sha.Finished());
  EXPECT_EQ(result.jobs_completed, 8u + 4u + 2u);  // full bracket
}

TEST(Executor, PrefetchRunsCappedSearchToCompletion) {
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = 20;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  ThreadPoolExecutor executor(
      scheduler, [](const Job& job) { return job.config.GetDouble("x"); },
      {.num_workers = 4, .prefetch = 4});
  const auto result = executor.Run();
  // The scheduler drains completely: buffered jobs are run, not dropped.
  EXPECT_EQ(result.jobs_completed, 20u);
  EXPECT_EQ(result.jobs_lost, 0u);
  EXPECT_EQ(result.records.size(), 20u);
  EXPECT_TRUE(scheduler.Finished());
}

TEST(Executor, PrefetchLeftoverBufferedJobsReportedLost) {
  // Stopping at max_jobs can strand prefetched jobs in the buffer; they
  // must go back to the scheduler as lost (lease-expiry accounting), not
  // linger as running trials.
  RandomSearchOptions options;
  options.R = 10;  // unlimited trials
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  ThreadPoolExecutor executor(
      scheduler, [](const Job&) { return 0.5; },
      {.num_workers = 4, .max_jobs = 25, .prefetch = 8});
  const auto result = executor.Run();
  EXPECT_GE(result.jobs_completed, 25u);
  std::size_t lost_trials = 0;
  std::size_t running_trials = 0;
  for (const auto& trial : scheduler.trials()) {
    lost_trials += trial.status == TrialStatus::kLost;
    running_trials += trial.status == TrialStatus::kRunning;
  }
  EXPECT_EQ(lost_trials, result.jobs_lost);
  EXPECT_EQ(running_trials, 0u);  // nothing stranded in-flight
}

TEST(Executor, PrefetchCrossesSynchronousBarrier) {
  // Prefetching must not wedge at a rung barrier: the buffer simply runs
  // dry until the last completion settles the rung and refills it.
  ShaOptions options;
  options.n = 8;
  options.r = 1;
  options.R = 4;
  options.eta = 2;
  options.spawn_new_brackets = false;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  ThreadPoolExecutor executor(
      sha,
      [](const Job& job) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return job.config.GetDouble("x");
      },
      {.num_workers = 4, .prefetch = 2});
  const auto result = executor.Run();
  EXPECT_TRUE(sha.Finished());
  EXPECT_EQ(result.jobs_completed, 8u + 4u + 2u);  // full bracket
  EXPECT_EQ(result.jobs_lost, 0u);
}

TEST(Executor, RecordsHaveMonotoneTimestamps) {
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = 30;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  ThreadPoolExecutor executor(
      scheduler, [](const Job&) { return 0.1; }, {.num_workers = 4});
  const auto result = executor.Run();
  for (std::size_t i = 1; i < result.records.size(); ++i) {
    EXPECT_GE(result.records[i].end_time,
              result.records[i - 1].end_time);
  }
}

TEST(Executor, ValidatesOptions) {
  RandomSearchOptions options;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  EXPECT_THROW(ThreadPoolExecutor(scheduler, nullptr, {}), CheckError);
  EXPECT_THROW(
      ThreadPoolExecutor(scheduler, [](const Job&) { return 0.0; },
                         {.num_workers = 0}),
      CheckError);
}

}  // namespace
}  // namespace hypertune
