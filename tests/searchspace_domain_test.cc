#include "searchspace/domain.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {
namespace {

TEST(ParamValue, ToStringRendering) {
  EXPECT_EQ(ToString(ParamValue{std::int64_t{42}}), "42");
  EXPECT_EQ(ToString(ParamValue{std::string{"relu"}}), "relu");
  EXPECT_EQ(ToString(ParamValue{0.5}), "0.5");
}

TEST(ParamValue, AsDoubleWidensIntsAndRejectsStrings) {
  EXPECT_DOUBLE_EQ(AsDouble(ParamValue{std::int64_t{3}}), 3.0);
  EXPECT_DOUBLE_EQ(AsDouble(ParamValue{2.5}), 2.5);
  EXPECT_THROW(AsDouble(ParamValue{std::string{"x"}}), CheckError);
}

TEST(Domain, ContinuousSampleWithinBounds) {
  const auto dom = Domain::Continuous(-1.0, 2.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = dom.Sample(rng);
    EXPECT_TRUE(dom.Contains(v));
    EXPECT_GE(std::get<double>(v), -1.0);
    EXPECT_LE(std::get<double>(v), 2.0);
  }
}

TEST(Domain, LogContinuousSamplesSpanDecades) {
  const auto dom = Domain::Continuous(1e-4, 1e2, Scale::kLog);
  Rng rng(2);
  int low_decades = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = std::get<double>(dom.Sample(rng));
    EXPECT_GE(v, 1e-4);
    EXPECT_LE(v, 1e2);
    if (v < 1e-1) ++low_decades;
  }
  // Log-uniform: half the samples fall below the geometric midpoint 1e-1.
  EXPECT_NEAR(low_decades / 2000.0, 0.5, 0.05);
}

TEST(Domain, LogScaleRequiresPositiveLo) {
  EXPECT_THROW(Domain::Continuous(0.0, 1.0, Scale::kLog), CheckError);
  EXPECT_THROW(Domain::Integer(0, 5, Scale::kLog), CheckError);
}

TEST(Domain, InvertedBoundsRejected) {
  EXPECT_THROW(Domain::Continuous(2.0, 1.0), CheckError);
  EXPECT_THROW(Domain::Integer(5, 4), CheckError);
  EXPECT_THROW(Domain::Choice({}), CheckError);
}

TEST(Domain, IntegerSamplingInclusive) {
  const auto dom = Domain::Integer(10, 12);
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(std::get<std::int64_t>(dom.Sample(rng)));
  EXPECT_EQ(seen, (std::set<std::int64_t>{10, 11, 12}));
  EXPECT_EQ(dom.Cardinality(), 3u);
}

TEST(Domain, ChoiceSamplingCoversOptions) {
  const auto dom = Domain::Choice(
      {ParamValue{std::string{"a"}}, ParamValue{std::string{"b"}}});
  Rng rng(4);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(std::get<std::string>(dom.Sample(rng)));
  }
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(dom.Cardinality(), 2u);
}

TEST(Domain, ContainsChecksTypeAndRange) {
  const auto cont = Domain::Continuous(0.0, 1.0);
  EXPECT_TRUE(cont.Contains(ParamValue{0.5}));
  EXPECT_FALSE(cont.Contains(ParamValue{1.5}));
  EXPECT_FALSE(cont.Contains(ParamValue{std::int64_t{0}}));  // wrong type

  const auto choice = Domain::Choice({ParamValue{std::int64_t{64}},
                                      ParamValue{std::int64_t{128}}});
  EXPECT_TRUE(choice.Contains(ParamValue{std::int64_t{64}}));
  EXPECT_FALSE(choice.Contains(ParamValue{std::int64_t{65}}));
}

TEST(Domain, UnitRoundTripContinuousLinear) {
  const auto dom = Domain::Continuous(-2.0, 6.0);
  EXPECT_DOUBLE_EQ(dom.ToUnit(ParamValue{2.0}), 0.5);
  EXPECT_DOUBLE_EQ(std::get<double>(dom.FromUnit(0.5)), 2.0);
  EXPECT_DOUBLE_EQ(std::get<double>(dom.FromUnit(0.0)), -2.0);
  EXPECT_DOUBLE_EQ(std::get<double>(dom.FromUnit(1.0)), 6.0);
}

TEST(Domain, UnitRoundTripContinuousLog) {
  const auto dom = Domain::Continuous(1e-4, 1.0, Scale::kLog);
  EXPECT_NEAR(dom.ToUnit(ParamValue{1e-2}), 0.5, 1e-12);
  EXPECT_NEAR(std::get<double>(dom.FromUnit(0.5)), 1e-2, 1e-12);
}

TEST(Domain, UnitRoundTripInteger) {
  const auto dom = Domain::Integer(0, 10);
  EXPECT_DOUBLE_EQ(dom.ToUnit(ParamValue{std::int64_t{5}}), 0.5);
  EXPECT_EQ(std::get<std::int64_t>(dom.FromUnit(0.5)), 5);
  EXPECT_EQ(std::get<std::int64_t>(dom.FromUnit(1.0)), 10);
}

TEST(Domain, UnitChoiceBucketMidpoints) {
  const auto dom = Domain::Choice({ParamValue{std::int64_t{1}},
                                   ParamValue{std::int64_t{2}},
                                   ParamValue{std::int64_t{3}},
                                   ParamValue{std::int64_t{4}}});
  EXPECT_DOUBLE_EQ(dom.ToUnit(ParamValue{std::int64_t{1}}), 0.125);
  EXPECT_DOUBLE_EQ(dom.ToUnit(ParamValue{std::int64_t{4}}), 0.875);
  EXPECT_EQ(std::get<std::int64_t>(dom.FromUnit(0.0)), 1);
  EXPECT_EQ(std::get<std::int64_t>(dom.FromUnit(0.99)), 4);
  // FromUnit(ToUnit(x)) is identity for choices.
  for (std::int64_t v = 1; v <= 4; ++v) {
    EXPECT_EQ(std::get<std::int64_t>(
                  dom.FromUnit(dom.ToUnit(ParamValue{v}))), v);
  }
}

TEST(Domain, FromUnitClampsOutOfRange) {
  const auto dom = Domain::Continuous(0.0, 1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(dom.FromUnit(-0.5)), 0.0);
  EXPECT_DOUBLE_EQ(std::get<double>(dom.FromUnit(1.5)), 1.0);
}

TEST(Domain, ToUnitRejectsValueOutsideDomain) {
  const auto dom = Domain::Continuous(0.0, 1.0);
  EXPECT_THROW(dom.ToUnit(ParamValue{2.0}), CheckError);
}

TEST(Domain, PerturbContinuousScalesAndClamps) {
  const auto dom = Domain::Continuous(0.0, 1.0);
  Rng rng(5);
  EXPECT_DOUBLE_EQ(std::get<double>(dom.Perturb(ParamValue{0.5}, 1.2, rng)),
                   0.6);
  EXPECT_DOUBLE_EQ(std::get<double>(dom.Perturb(ParamValue{0.9}, 1.2, rng)),
                   1.0);  // clamped
  EXPECT_DOUBLE_EQ(std::get<double>(dom.Perturb(ParamValue{0.5}, 0.8, rng)),
                   0.4);
}

TEST(Domain, PerturbIntegerGuaranteesMovementOnSmallRanges) {
  const auto dom = Domain::Integer(1, 10);
  Rng rng(6);
  // 2 * 1.2 = 2.4 -> rounds to 2: the fallback forces a step to 3.
  EXPECT_EQ(std::get<std::int64_t>(
                dom.Perturb(ParamValue{std::int64_t{2}}, 1.2, rng)), 3);
  EXPECT_EQ(std::get<std::int64_t>(
                dom.Perturb(ParamValue{std::int64_t{10}}, 1.2, rng)), 10);
}

TEST(Domain, PerturbOrderedChoiceStepsAdjacent) {
  const auto dom = Domain::Choice({ParamValue{std::int64_t{64}},
                                   ParamValue{std::int64_t{128}},
                                   ParamValue{std::int64_t{256}}},
                                  /*ordered=*/true);
  Rng rng(7);
  EXPECT_EQ(std::get<std::int64_t>(
                dom.Perturb(ParamValue{std::int64_t{128}}, 1.2, rng)), 256);
  EXPECT_EQ(std::get<std::int64_t>(
                dom.Perturb(ParamValue{std::int64_t{128}}, 0.8, rng)), 64);
  // Clamped at the ends.
  EXPECT_EQ(std::get<std::int64_t>(
                dom.Perturb(ParamValue{std::int64_t{256}}, 1.2, rng)), 256);
}

TEST(Domain, PerturbUnorderedChoiceResamples) {
  const auto dom = Domain::Choice({ParamValue{std::string{"a"}},
                                   ParamValue{std::string{"b"}},
                                   ParamValue{std::string{"c"}}});
  Rng rng(8);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(std::get<std::string>(
        dom.Perturb(ParamValue{std::string{"a"}}, 1.2, rng)));
  }
  EXPECT_EQ(seen.size(), 3u);  // can land anywhere, including itself
}

TEST(Domain, CardinalityContinuousIsZero) {
  EXPECT_EQ(Domain::Continuous(0, 1).Cardinality(), 0u);
}

}  // namespace
}  // namespace hypertune
