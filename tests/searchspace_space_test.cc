#include "searchspace/space.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "searchspace/perturb.h"
#include "searchspace/spaces.h"

namespace hypertune {
namespace {

SearchSpace TwoParamSpace() {
  SearchSpace space;
  space.Add("lr", Domain::Continuous(1e-4, 1.0, Scale::kLog))
      .Add("layers", Domain::Integer(2, 4));
  return space;
}

TEST(Configuration, SetGetOverwrite) {
  Configuration config;
  config.Set("a", ParamValue{1.0});
  config.Set("b", ParamValue{std::int64_t{2}});
  config.Set("a", ParamValue{3.0});  // overwrite keeps position
  EXPECT_EQ(config.size(), 2u);
  EXPECT_DOUBLE_EQ(config.GetDouble("a"), 3.0);
  EXPECT_EQ(config.GetInt("b"), 2);
  EXPECT_EQ(config.at(0).first, "a");
}

TEST(Configuration, MissingAndWrongTypeThrow) {
  Configuration config;
  config.Set("a", ParamValue{1.0});
  EXPECT_THROW(config.Get("zz"), CheckError);
  EXPECT_THROW(config.GetInt("a"), CheckError);
  EXPECT_THROW(config.GetString("a"), CheckError);
  EXPECT_FALSE(config.Has("zz"));
  EXPECT_TRUE(config.Has("a"));
}

TEST(Configuration, GetDoubleWidensInt) {
  Configuration config;
  config.Set("n", ParamValue{std::int64_t{5}});
  EXPECT_DOUBLE_EQ(config.GetDouble("n"), 5.0);
}

TEST(Configuration, ToStringAndEquality) {
  Configuration a, b;
  a.Set("x", ParamValue{std::int64_t{1}});
  b.Set("x", ParamValue{std::int64_t{1}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "x=1");
  b.Set("x", ParamValue{std::int64_t{2}});
  EXPECT_NE(a, b);
}

TEST(SearchSpace, DuplicateNameRejected) {
  SearchSpace space;
  space.Add("a", Domain::Continuous(0, 1));
  EXPECT_THROW(space.Add("a", Domain::Continuous(0, 1)), CheckError);
}

TEST(SearchSpace, SampleIsContained) {
  const auto space = TwoParamSpace();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto config = space.Sample(rng);
    EXPECT_TRUE(space.Contains(config));
    EXPECT_EQ(config.size(), 2u);
  }
}

TEST(SearchSpace, ContainsRejectsExtraMissingOrOutOfRange) {
  const auto space = TwoParamSpace();
  Configuration config;
  config.Set("lr", ParamValue{0.1});
  EXPECT_FALSE(space.Contains(config));  // missing layers
  config.Set("layers", ParamValue{std::int64_t{3}});
  EXPECT_TRUE(space.Contains(config));
  config.Set("extra", ParamValue{1.0});
  EXPECT_FALSE(space.Contains(config));  // extra param

  Configuration bad;
  bad.Set("lr", ParamValue{5.0});  // out of range
  bad.Set("layers", ParamValue{std::int64_t{3}});
  EXPECT_FALSE(space.Contains(bad));
}

TEST(SearchSpace, UnitVectorRoundTrip) {
  const auto space = TwoParamSpace();
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto config = space.Sample(rng);
    const auto u = space.ToUnitVector(config);
    ASSERT_EQ(u.size(), 2u);
    for (double v : u) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    // Integer params round-trip exactly; continuous round-trip to tolerance.
    const auto back = space.FromUnitVector(u);
    EXPECT_EQ(back.GetInt("layers"), config.GetInt("layers"));
    EXPECT_NEAR(std::log(back.GetDouble("lr")),
                std::log(config.GetDouble("lr")), 1e-9);
  }
}

TEST(SearchSpace, FromUnitVectorSizeMismatchThrows) {
  const auto space = TwoParamSpace();
  EXPECT_THROW(space.FromUnitVector(std::vector<double>{0.5}), CheckError);
}

TEST(SearchSpace, DomainLookupByName) {
  const auto space = TwoParamSpace();
  EXPECT_EQ(space.domain("layers").kind(), ParamKind::kInteger);
  EXPECT_THROW(space.domain("nope"), CheckError);
  EXPECT_EQ(space.name(0), "lr");
}

TEST(PbtExplore, OutputAlwaysContained) {
  const auto space = spaces::SmallCnnArchSpace();
  Rng rng(3);
  PbtExploreOptions options;
  for (int i = 0; i < 200; ++i) {
    const auto config = space.Sample(rng);
    const auto explored = PbtExplore(space, config, options, rng);
    EXPECT_TRUE(space.Contains(explored));
  }
}

TEST(PbtExplore, FrozenParamsNeverChange) {
  const auto space = spaces::SmallCnnArchSpace();
  Rng rng(4);
  PbtExploreOptions options;
  options.frozen = spaces::IsSmallCnnArchParam;
  for (int i = 0; i < 100; ++i) {
    const auto config = space.Sample(rng);
    const auto explored = PbtExplore(space, config, options, rng);
    EXPECT_EQ(explored.GetInt("num_layers"), config.GetInt("num_layers"));
    EXPECT_EQ(explored.GetInt("num_filters"), config.GetInt("num_filters"));
  }
}

TEST(PbtExplore, PerturbProbabilityZeroMeansFullResample) {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  Rng rng(5);
  PbtExploreOptions options;
  options.perturb_probability = 0.0;
  Configuration config;
  config.Set("x", ParamValue{0.5});
  int exactly_scaled = 0;
  for (int i = 0; i < 200; ++i) {
    const double v = PbtExplore(space, config, options, rng).GetDouble("x");
    if (v == 0.6 || v == 0.4) ++exactly_scaled;
  }
  EXPECT_EQ(exactly_scaled, 0);  // resampled, never multiplied by 1.2/0.8
}

TEST(PbtExplore, PerturbProbabilityOneUsesFactors) {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  Rng rng(6);
  PbtExploreOptions options;
  options.perturb_probability = 1.0;
  Configuration config;
  config.Set("x", ParamValue{0.5});
  for (int i = 0; i < 100; ++i) {
    const double v = PbtExplore(space, config, options, rng).GetDouble("x");
    EXPECT_TRUE(v == 0.6 || v == 0.4) << v;
  }
}

TEST(PaperSpaces, DimensionsMatchTables) {
  EXPECT_EQ(spaces::CudaConvnetSpace().NumParams(), 7u);
  EXPECT_EQ(spaces::SmallCnnArchSpace().NumParams(), 10u);  // Table 1
  EXPECT_EQ(spaces::PtbLstmSpace().NumParams(), 9u);        // Table 2
  EXPECT_EQ(spaces::AwdLstmSpace().NumParams(), 9u);        // Table 3
  EXPECT_EQ(spaces::SvmSpace().NumParams(), 2u);
}

TEST(PaperSpaces, Table1RangesSpotCheck) {
  const auto space = spaces::SmallCnnArchSpace();
  const auto& batch = space.domain("batch_size");
  EXPECT_EQ(batch.Cardinality(), 4u);
  EXPECT_TRUE(batch.Contains(ParamValue{std::int64_t{64}}));
  EXPECT_TRUE(batch.Contains(ParamValue{std::int64_t{512}}));
  EXPECT_FALSE(batch.Contains(ParamValue{std::int64_t{100}}));
  const auto& lr = space.domain("learning_rate");
  EXPECT_DOUBLE_EQ(lr.lo(), 1e-5);
  EXPECT_DOUBLE_EQ(lr.hi(), 1e1);
  EXPECT_EQ(lr.scale(), Scale::kLog);
}

TEST(PaperSpaces, Table2RangesSpotCheck) {
  const auto space = spaces::PtbLstmSpace();
  const auto& hidden = space.domain("hidden_nodes");
  EXPECT_DOUBLE_EQ(hidden.lo(), 200);
  EXPECT_DOUBLE_EQ(hidden.hi(), 1500);
  const auto& decay = space.domain("decay_rate");
  EXPECT_EQ(decay.scale(), Scale::kLinear);
}

TEST(PaperSpaces, Table3RangesSpotCheck) {
  const auto space = spaces::AwdLstmSpace();
  EXPECT_DOUBLE_EQ(space.domain("learning_rate").lo(), 10.0);
  EXPECT_DOUBLE_EQ(space.domain("weight_decay").hi(), 2e-6);
  EXPECT_EQ(space.domain("batch_size").Cardinality(), 3u);
}

TEST(PaperSpaces, ArchitectureParamPredicates) {
  EXPECT_TRUE(spaces::IsSmallCnnArchParam("num_layers"));
  EXPECT_TRUE(spaces::IsSmallCnnArchParam("num_filters"));
  EXPECT_FALSE(spaces::IsSmallCnnArchParam("learning_rate"));
  EXPECT_TRUE(spaces::IsPtbLstmArchParam("hidden_nodes"));
  EXPECT_FALSE(spaces::IsPtbLstmArchParam("batch_size"));
}

}  // namespace
}  // namespace hypertune
