// The distributed tuning service: protocol handling, job leases, heartbeat
// renewal, lease-expiry lost-job detection, and an end-to-end virtual-time
// harness with simulated (and crashing) workers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/asha.h"
#include "core/random_search.h"
#include "core/trial_json.h"
#include "service/server.h"
#include "service/worker.h"
#include "telemetry/telemetry.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

class RankEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    return config.GetDouble("x") * (1.0 + 1.0 / resource);
  }
  double Duration(const Configuration&, Resource from, Resource to) override {
    return to - from;
  }
};

Json RequestJob(std::uint64_t worker) {
  Json message = JsonObject{};
  message.Set("type", Json("request_job"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  return message;
}

Json Report(std::uint64_t worker, std::int64_t job_id, double loss) {
  Json message = JsonObject{};
  message.Set("type", Json("report"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  message.Set("loss", Json(loss));
  return message;
}

Json Heartbeat(std::uint64_t worker, std::int64_t job_id) {
  Json message = JsonObject{};
  message.Set("type", Json("heartbeat"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  return message;
}

TEST(JobWireFormat, RoundTrip) {
  Job job;
  job.trial_id = 7;
  job.config.Set("x", ParamValue{0.25});
  job.from_resource = 4;
  job.to_resource = 16;
  job.rung = 2;
  job.bracket = 1;
  job.tag = 99;
  const Job back = JobFromJson(Json::Parse(ToJson(job).Dump()));
  EXPECT_EQ(back.trial_id, job.trial_id);
  EXPECT_EQ(back.config, job.config);
  EXPECT_DOUBLE_EQ(back.from_resource, 4);
  EXPECT_DOUBLE_EQ(back.to_resource, 16);
  EXPECT_EQ(back.rung, 2);
  EXPECT_EQ(back.bracket, 1);
  EXPECT_EQ(back.tag, 99u);
}

TEST(Server, AssignAndReportFlow) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});

  const Json reply = server.HandleMessage(RequestJob(1), /*now=*/0);
  ASSERT_EQ(reply.at("type").AsString(), "job");
  const auto job_id = reply.at("job_id").AsInt();
  EXPECT_EQ(server.stats().jobs_assigned, 1u);
  EXPECT_EQ(server.stats().active_leases, 1u);

  const Json ack = server.HandleMessage(Report(1, job_id, 0.42), 5);
  EXPECT_EQ(ack.at("type").AsString(), "ack");
  EXPECT_EQ(server.stats().jobs_completed, 1u);
  EXPECT_EQ(server.stats().active_leases, 0u);
  ASSERT_TRUE(server.Current().has_value());
  EXPECT_DOUBLE_EQ(server.Current()->loss, 0.42);
}

TEST(Server, LeaseExpiryReportsLost) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});

  const Json reply = server.HandleMessage(RequestJob(1), 0);
  const Job job = JobFromJson(reply.at("job"));
  // Worker goes silent; time passes beyond the lease.
  server.Tick(61);
  EXPECT_EQ(server.stats().leases_expired, 1u);
  EXPECT_EQ(server.stats().active_leases, 0u);
  EXPECT_EQ(scheduler.trials().Get(job.trial_id).status, TrialStatus::kLost);
}

TEST(Server, HeartbeatExtendsLease) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});

  const Json reply = server.HandleMessage(RequestJob(1), 0);
  const auto job_id = reply.at("job_id").AsInt();
  // Heartbeats at 50, 100: lease pushed to 160.
  EXPECT_EQ(server.HandleMessage(Heartbeat(1, job_id), 50).at("type")
                .AsString(), "ack");
  EXPECT_EQ(server.HandleMessage(Heartbeat(1, job_id), 100).at("type")
                .AsString(), "ack");
  server.Tick(155);
  EXPECT_EQ(server.stats().leases_expired, 0u);
  // Report still lands.
  const Json ack = server.HandleMessage(Report(1, job_id, 0.3), 158);
  EXPECT_EQ(ack.at("type").AsString(), "ack");
  EXPECT_FALSE(ack.Has("stale"));
}

TEST(Server, StaleReportAfterExpiryIsIgnored) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});

  const Json reply = server.HandleMessage(RequestJob(1), 0);
  const auto job_id = reply.at("job_id").AsInt();
  server.Tick(100);  // expired -> lost
  const Json ack = server.HandleMessage(Report(1, job_id, 0.3), 101);
  EXPECT_EQ(ack.at("type").AsString(), "ack");
  EXPECT_TRUE(ack.at("stale").AsBool());
  EXPECT_EQ(server.stats().stale_reports_ignored, 1u);
  // The scheduler never saw the stale result.
  EXPECT_FALSE(server.Current().has_value());
}

TEST(Server, HeartbeatForLostLeaseSaysSo) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});
  const Json reply = server.HandleMessage(RequestJob(1), 0);
  const auto job_id = reply.at("job_id").AsInt();
  const Json late = server.HandleMessage(Heartbeat(1, job_id), 200);
  EXPECT_EQ(late.at("type").AsString(), "lease_lost");
}

TEST(Server, MalformedMessagesGetErrorReplies) {
  RandomSearchOptions options;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {});
  Json bad = JsonObject{};
  bad.Set("type", Json("launch_missiles"));
  EXPECT_EQ(server.HandleMessage(bad, 0).at("type").AsString(), "error");
  Json missing = JsonObject{};
  missing.Set("type", Json("report"));  // no job_id/loss
  EXPECT_EQ(server.HandleMessage(missing, 0).at("type").AsString(), "error");
  EXPECT_EQ(server.stats().malformed_messages, 2u);
}

TEST(Server, EveryErrorReplyIncrementsMalformedCount) {
  // Regression: error-path accounting must hold on *every* error reply —
  // unknown types, missing fields, wrong-typed fields, and non-object
  // messages alike.
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});

  std::vector<Json> bad_messages;
  bad_messages.push_back(Json("not an object"));
  bad_messages.push_back(JsonObject{});  // no type at all
  Json wrong_type = JsonObject{};
  wrong_type.Set("type", Json(42));  // type present but not a string
  bad_messages.push_back(std::move(wrong_type));
  Json unknown = JsonObject{};
  unknown.Set("type", Json("launch_missiles"));
  bad_messages.push_back(std::move(unknown));
  Json no_worker = JsonObject{};
  no_worker.Set("type", Json("request_job"));  // missing worker
  bad_messages.push_back(std::move(no_worker));
  Json no_job_id = JsonObject{};
  no_job_id.Set("type", Json("report"));  // missing job_id/loss
  bad_messages.push_back(std::move(no_job_id));
  Json bad_heartbeat = JsonObject{};
  bad_heartbeat.Set("type", Json("heartbeat"));  // missing job_id
  bad_messages.push_back(std::move(bad_heartbeat));
  Json string_job_id = JsonObject{};
  string_job_id.Set("type", Json("heartbeat"));
  string_job_id.Set("job_id", Json("seven"));  // wrong-typed job_id
  bad_messages.push_back(std::move(string_job_id));

  std::size_t errors = 0;
  for (const auto& message : bad_messages) {
    const Json reply = server.HandleMessage(message, 0);
    EXPECT_EQ(reply.at("type").AsString(), "error") << message.Dump();
    EXPECT_EQ(server.stats().malformed_messages, ++errors) << message.Dump();
  }
}

TEST(Server, ReportMissingLossKeepsLeaseAlive) {
  // A report whose payload fails validation must not consume the lease:
  // the worker's retry (with the loss attached) should still land.
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});
  const Json reply = server.HandleMessage(RequestJob(1), 0);
  const auto job_id = reply.at("job_id").AsInt();

  Json lossless = JsonObject{};
  lossless.Set("type", Json("report"));
  lossless.Set("job_id", Json(job_id));
  EXPECT_EQ(server.HandleMessage(lossless, 1).at("type").AsString(), "error");
  EXPECT_EQ(server.stats().malformed_messages, 1u);
  EXPECT_EQ(server.stats().active_leases, 1u);

  const Json ack = server.HandleMessage(Report(1, job_id, 0.2), 2);
  EXPECT_EQ(ack.at("type").AsString(), "ack");
  EXPECT_FALSE(ack.Has("stale"));
  EXPECT_EQ(server.stats().jobs_completed, 1u);
}

TEST(Server, TelemetryRecordsLeaseLifecycle) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  auto telemetry = Telemetry::ForSimulation();
  TuningServer server(scheduler,
                      {.lease_timeout = 60, .telemetry = telemetry.get()});

  const Json reply = server.HandleMessage(RequestJob(1), 0);
  const auto job_id = reply.at("job_id").AsInt();
  server.HandleMessage(Heartbeat(1, job_id), 10);
  server.HandleMessage(Report(1, job_id, 0.4), 20);
  (void)server.HandleMessage(RequestJob(1), 30);
  server.Tick(300);  // second lease expires silently

  std::vector<std::string> names;
  for (const auto& event : telemetry->tracer().Events()) {
    if (event.category == "lease") names.push_back(event.name);
  }
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "lease_granted");
  EXPECT_EQ(names[1], "lease_renewed");
  EXPECT_EQ(names[2], "job_reported");
  EXPECT_EQ(names[3], "lease_granted");  // the second assignment
  EXPECT_EQ(names[4], "lease_expired");
  // Event times are the protocol's virtual `now`, not wall time.
  EXPECT_DOUBLE_EQ(telemetry->tracer().Events().back().time, 300);

  const Json snapshot = telemetry->metrics().Snapshot();
  EXPECT_EQ(snapshot.at("counters").at("server.jobs_assigned").AsInt(), 2);
  EXPECT_EQ(snapshot.at("counters").at("server.leases_expired").AsInt(), 1);
}

TEST(Server, NoJobReplyCarriesRetryHint) {
  // A capped random search with one outstanding job has no work.
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = 1;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 40});
  (void)server.HandleMessage(RequestJob(1), 0);
  const Json reply = server.HandleMessage(RequestJob(2), 1);
  EXPECT_EQ(reply.at("type").AsString(), "no_job");
  EXPECT_GT(reply.at("retry_after").AsDouble(), 0);
}

TEST(Server, ExpiryTiesProcessedInJobIdOrder) {
  // Three leases granted at the same instant share a deadline; the heap
  // must expire them in ascending job id — the order the old full-scan
  // Tick produced — so traces stay decision-identical.
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  auto telemetry = Telemetry::ForSimulation();
  TuningServer server(scheduler,
                      {.lease_timeout = 60, .telemetry = telemetry.get()});
  std::vector<std::int64_t> job_ids;
  for (std::uint64_t w = 1; w <= 3; ++w) {
    job_ids.push_back(server.HandleMessage(RequestJob(w), 0).at("job_id")
                          .AsInt());
  }
  server.Tick(61);
  EXPECT_EQ(server.stats().leases_expired, 3u);
  std::vector<std::int64_t> expired_order;
  for (const auto& event : telemetry->tracer().Events()) {
    if (event.name == "lease_expired") {
      expired_order.push_back(event.args.at("job_id").AsInt());
    }
  }
  EXPECT_EQ(expired_order, job_ids);  // ascending ids, tie on deadline
}

TEST(Server, RenewalLeavesStaleHeapEntryBehind) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});
  const auto job_id = server.HandleMessage(RequestJob(1), 0).at("job_id")
                          .AsInt();
  // Renewal pushes a second heap entry; the original one goes stale.
  server.HandleMessage(Heartbeat(1, job_id), 50);
  EXPECT_EQ(server.stats().deadline_heap_entries, 2u);
  EXPECT_EQ(server.stats().active_leases, 1u);
  // The stale entry (deadline 60) comes due and must be discarded against
  // the authoritative deadline (110) instead of expiring the lease.
  server.Tick(61);
  EXPECT_EQ(server.stats().leases_expired, 0u);
  EXPECT_EQ(server.stats().active_leases, 1u);
  EXPECT_EQ(server.stats().deadline_heap_entries, 1u);  // stale one drained
  // The renewed deadline is the real one.
  server.Tick(111);
  EXPECT_EQ(server.stats().leases_expired, 1u);
  EXPECT_EQ(server.stats().deadline_heap_entries, 0u);
}

TEST(Server, ReportAfterRenewalConsumesLeaseCleanly) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});
  const auto job_id = server.HandleMessage(RequestJob(1), 0).at("job_id")
                          .AsInt();
  server.HandleMessage(Heartbeat(1, job_id), 50);
  const Json ack = server.HandleMessage(Report(1, job_id, 0.2), 70);
  EXPECT_EQ(ack.at("type").AsString(), "ack");
  EXPECT_FALSE(ack.Has("stale"));
  EXPECT_EQ(server.stats().jobs_completed, 1u);
  EXPECT_EQ(server.stats().active_leases, 0u);
  // Both heap entries (original + renewal) are now stale; a far-future
  // sweep must drain them without expiring anything.
  server.Tick(1e6);
  EXPECT_EQ(server.stats().leases_expired, 0u);
  EXPECT_EQ(server.stats().deadline_heap_entries, 0u);
}

Json RequestJobs(std::uint64_t worker, std::int64_t count) {
  Json message = JsonObject{};
  message.Set("type", Json("request_jobs"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("count", Json(count));
  return message;
}

TEST(Server, BatchedRequestLeasesUpToCount) {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 60});
  const Json reply = server.HandleMessage(RequestJobs(1, 5), 0);
  ASSERT_EQ(reply.at("type").AsString(), "jobs");
  ASSERT_EQ(reply.at("jobs").size(), 5u);
  EXPECT_FALSE(reply.Has("retry_after"));  // full fill, no hint needed
  EXPECT_EQ(server.stats().jobs_assigned, 5u);
  EXPECT_EQ(server.stats().active_leases, 5u);
  // Every batched lease is individually reportable.
  for (const auto& entry : reply.at("jobs").AsArray()) {
    const Json ack =
        server.HandleMessage(Report(1, entry.at("job_id").AsInt(), 0.5), 10);
    EXPECT_EQ(ack.at("type").AsString(), "ack");
  }
  EXPECT_EQ(server.stats().jobs_completed, 5u);
  EXPECT_EQ(server.stats().active_leases, 0u);
}

TEST(Server, BatchedRequestPartialFillCarriesRetryHint) {
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = 3;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});
  const Json reply = server.HandleMessage(RequestJobs(1, 5), 0);
  ASSERT_EQ(reply.at("type").AsString(), "jobs");
  EXPECT_EQ(reply.at("jobs").size(), 3u);  // scheduler went dry mid-batch
  EXPECT_GT(reply.at("retry_after").AsDouble(), 0);
  // The tail of an exhausted scheduler is a plain no_job, same as the
  // single-job path.
  const Json tail = server.HandleMessage(RequestJobs(2, 5), 1);
  EXPECT_EQ(tail.at("type").AsString(), "no_job");
  EXPECT_GT(tail.at("retry_after").AsDouble(), 0);
}

TEST(Server, BatchedRequestCountClampedAndValidated) {
  RandomSearchOptions options;
  options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60, .max_batch = 2});
  // A hostile count is clamped to max_batch, not honored.
  const Json reply = server.HandleMessage(RequestJobs(1, 1000000), 0);
  ASSERT_EQ(reply.at("type").AsString(), "jobs");
  EXPECT_EQ(reply.at("jobs").size(), 2u);
  // count < 1 is malformed, with the usual error accounting.
  EXPECT_EQ(server.HandleMessage(RequestJobs(1, 0), 1).at("type").AsString(),
            "error");
  EXPECT_EQ(server.stats().malformed_messages, 1u);
}

TEST(Service, PrefetchingWorkersDriveAshaToCompletion) {
  // Same end-to-end harness as below, but workers lease 3 jobs per
  // round-trip and keep queued leases alive via heartbeats.
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.max_trials = 40;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 30});
  RankEnv env;
  std::vector<SimulatedWorker> workers;
  for (std::uint64_t i = 0; i < 8; ++i) {
    workers.emplace_back(i, env, /*heartbeat_interval=*/5, /*prefetch=*/3);
  }
  for (double now = 0; now < 400; now += 0.5) {
    for (auto& worker : workers) {
      if (now >= worker.next_action_time()) worker.OnTick(server, now);
    }
  }
  EXPECT_TRUE(asha.Finished());
  // Queued leases were renewed while earlier jobs trained: nothing expired.
  EXPECT_EQ(server.stats().leases_expired, 0u);
  EXPECT_GT(server.stats().jobs_completed, 40u);
  ASSERT_TRUE(server.Current().has_value());
  bool full_training = false;
  for (const auto& trial : asha.trials()) {
    full_training |= trial.resource_trained >= 27;
  }
  EXPECT_TRUE(full_training);
}

TEST(Service, EndToEndVirtualTimeHarness) {
  // 8 simulated workers drive ASHA through the full protocol.
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.max_trials = 40;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 30});
  RankEnv env;
  std::vector<SimulatedWorker> workers;
  for (std::uint64_t i = 0; i < 8; ++i) {
    workers.emplace_back(i, env, /*heartbeat_interval=*/5);
  }
  for (double now = 0; now < 200; now += 0.5) {
    for (auto& worker : workers) {
      if (now >= worker.next_action_time()) worker.OnTick(server, now);
    }
  }
  EXPECT_TRUE(asha.Finished());
  EXPECT_EQ(server.stats().leases_expired, 0u);
  EXPECT_GT(server.stats().jobs_completed, 40u);  // promotions included
  ASSERT_TRUE(server.Current().has_value());
  // Promotions flowed through the protocol: some trial trained to R.
  bool full_training = false;
  for (const auto& trial : asha.trials()) {
    full_training |= trial.resource_trained >= 27;
  }
  EXPECT_TRUE(full_training);
}

TEST(Service, CrashedWorkersJobsAreRecovered) {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 10});
  RankEnv env;
  SimulatedWorker healthy(1, env, 2);
  SimulatedWorker doomed(2, env, 2);

  // Both take jobs; one crashes immediately.
  healthy.OnTick(server, 0);
  doomed.OnTick(server, 0);
  doomed.Crash();
  EXPECT_EQ(server.stats().jobs_assigned, 2u);

  std::size_t lost_before = 0;
  for (double now = 0.5; now < 60; now += 0.5) {
    if (now >= healthy.next_action_time()) healthy.OnTick(server, now);
    server.Tick(now);
  }
  EXPECT_EQ(server.stats().leases_expired, 1u);
  for (const auto& trial : asha.trials()) {
    lost_before += trial.status == TrialStatus::kLost;
  }
  EXPECT_EQ(lost_before, 1u);
  // The healthy worker kept making progress throughout.
  EXPECT_GT(healthy.jobs_completed(), 10u);
}

AshaOptions SmallAsha() {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.max_trials = 40;
  return options;
}

TEST(Service, WorkerBacksOffWhileServerIsDown) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), SmallAsha());
  TuningServer server(asha, {.lease_timeout = 60});
  RankEnv env;
  auto telemetry = Telemetry::ForSimulation();
  WorkerRetryOptions retry;
  retry.initial_backoff = 1.0;
  retry.max_backoff = 4.0;
  retry.multiplier = 2.0;
  retry.telemetry = telemetry.get();
  SimulatedWorker worker(0, env, /*heartbeat_interval=*/5.0, /*prefetch=*/1,
                         /*hazards=*/nullptr, retry);

  DirectConnection connection;  // detached: the server is unreachable
  worker.OnTick(static_cast<ServerConnection&>(connection), 0);
  EXPECT_EQ(worker.retries(), 1u);
  // Backoff doubles up to the cap: retries land at 1, 3, 7, 11, 15, ...
  EXPECT_DOUBLE_EQ(worker.next_action_time(), 1.0);
  worker.OnTick(static_cast<ServerConnection&>(connection), 1.0);
  EXPECT_DOUBLE_EQ(worker.next_action_time(), 3.0);
  worker.OnTick(static_cast<ServerConnection&>(connection), 3.0);
  EXPECT_DOUBLE_EQ(worker.next_action_time(), 7.0);
  worker.OnTick(static_cast<ServerConnection&>(connection), 7.0);
  EXPECT_DOUBLE_EQ(worker.next_action_time(), 11.0);  // capped at 4
  EXPECT_EQ(worker.retries(), 4u);
  EXPECT_EQ(telemetry->metrics().counter("service.worker_retries").value(),
            4);

  // The server comes back: the very next attempt succeeds and the backoff
  // resets to healthy.
  connection.Attach(&server);
  worker.OnTick(static_cast<ServerConnection&>(connection), 11.0);
  EXPECT_TRUE(worker.IsTraining());
  EXPECT_EQ(worker.retries(), 4u);
}

TEST(Service, WorkerHoldsCompletionReportThroughOutage) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), SmallAsha());
  TuningServer server(asha, {.lease_timeout = 1e6});
  RankEnv env;
  SimulatedWorker worker(0, env, /*heartbeat_interval=*/1e6);

  DirectConnection connection(&server);
  worker.OnTick(static_cast<ServerConnection&>(connection), 0);
  ASSERT_TRUE(worker.IsTraining());
  const double finish = worker.next_action_time();

  // The server dies before the job finishes: the report is undeliverable
  // and must be held, not dropped.
  connection.Detach();
  worker.OnTick(static_cast<ServerConnection&>(connection), finish);
  EXPECT_TRUE(worker.has_pending_report());
  EXPECT_EQ(worker.jobs_completed(), 0u);
  EXPECT_EQ(server.stats().jobs_completed, 0u);

  // Server back: the held report is delivered before any new work.
  connection.Attach(&server);
  worker.OnTick(static_cast<ServerConnection&>(connection),
                worker.next_action_time());
  EXPECT_FALSE(worker.has_pending_report());
  EXPECT_EQ(worker.jobs_completed(), 1u);
  EXPECT_EQ(server.stats().jobs_completed, 1u);
}

TEST(Service, JitterDesynchronizesRetryDelays) {
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), SmallAsha());
  RankEnv env;
  WorkerRetryOptions retry;
  retry.initial_backoff = 2.0;
  retry.jitter = 0.5;
  retry.seed = 7;
  SimulatedWorker a(0, env, 5.0, 1, nullptr, retry);
  SimulatedWorker b(1, env, 5.0, 1, nullptr, retry);
  DirectConnection down;  // never attached
  a.OnTick(static_cast<ServerConnection&>(down), 0);
  b.OnTick(static_cast<ServerConnection&>(down), 0);
  // Each delay is backoff * (1 - jitter * u): within (1, 2] here, and the
  // per-worker streams (seed + id) give the fleet distinct delays.
  EXPECT_GT(a.next_action_time(), 1.0);
  EXPECT_LE(a.next_action_time(), 2.0);
  EXPECT_GT(b.next_action_time(), 1.0);
  EXPECT_LE(b.next_action_time(), 2.0);
  EXPECT_NE(a.next_action_time(), b.next_action_time());
}

}  // namespace
}  // namespace hypertune
