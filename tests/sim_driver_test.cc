#include "sim/driver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/asha.h"
#include "core/random_search.h"
#include "core/sha.h"
#include "lifecycle/hazards.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

/// Loss = the config's x value; duration = resource increment.
class LinearEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    (void)resource;
    return config.GetDouble("x");
  }
  double Duration(const Configuration& config, Resource from,
                  Resource to) override {
    (void)config;
    return to - from;
  }
};

TEST(Hazards, NoHazardsIdentity) {
  const HazardModel model({});
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.StragglerMultiplier(rng), 1.0);
  EXPECT_FALSE(model.DropTime(100.0, rng).has_value());
}

TEST(Hazards, StragglerMultiplierAtLeastOne) {
  HazardOptions options;
  options.straggler_std = 1.0;
  const HazardModel model(options);
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double m = model.StragglerMultiplier(rng);
    ASSERT_GE(m, 1.0);
    sum += m;
  }
  // E[1 + |z|] = 1 + sqrt(2/pi) for std 1.
  EXPECT_NEAR(sum / 10000, 1.0 + std::sqrt(2.0 / M_PI), 0.02);
}

TEST(Hazards, DropProbabilityMatchesPerUnitModel) {
  HazardOptions options;
  options.drop_probability = 0.01;
  const HazardModel model(options);
  Rng rng(3);
  int dropped = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) dropped += model.DropTime(50.0, rng).has_value();
  // Survival of a 50-unit job: (1 - 0.01)^50 ~ 0.605.
  EXPECT_NEAR(static_cast<double>(dropped) / n, 1.0 - std::pow(0.99, 50),
              0.015);
}

TEST(Hazards, DropTimeWithinDuration) {
  HazardOptions options;
  options.drop_probability = 0.05;
  const HazardModel model(options);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto t = model.DropTime(20.0, rng);
    if (t) {
      EXPECT_GT(*t, 0.0);
      EXPECT_LT(*t, 20.0);
    }
  }
}

TEST(Hazards, OptionValidation) {
  HazardOptions options;
  options.drop_probability = 1.0;
  EXPECT_THROW(HazardModel{options}, CheckError);
  options.drop_probability = 0;
  options.straggler_std = -1;
  EXPECT_THROW(HazardModel{options}, CheckError);
}

TEST(Driver, SingleWorkerSequentialTimes) {
  RandomSearchOptions rs_options;
  rs_options.R = 10;
  rs_options.max_trials = 5;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), rs_options);
  LinearEnv env;
  DriverOptions options;
  options.num_workers = 1;
  SimulationDriver driver(scheduler, env, options);
  const auto result = driver.Run();
  ASSERT_EQ(result.completions.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(result.completions[i].end_time, 10.0 * (i + 1));
  }
  EXPECT_DOUBLE_EQ(result.end_time, 50.0);
  EXPECT_DOUBLE_EQ(result.busy_time, 50.0);
  EXPECT_EQ(result.jobs_completed, 5u);
}

TEST(Driver, ParallelWorkersOverlap) {
  RandomSearchOptions rs_options;
  rs_options.R = 10;
  rs_options.max_trials = 6;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), rs_options);
  LinearEnv env;
  DriverOptions options;
  options.num_workers = 3;
  SimulationDriver driver(scheduler, env, options);
  const auto result = driver.Run();
  // 6 identical 10-unit jobs on 3 workers: two waves, end at t=20.
  EXPECT_EQ(result.jobs_completed, 6u);
  EXPECT_DOUBLE_EQ(result.end_time, 20.0);
  EXPECT_DOUBLE_EQ(result.busy_time, 60.0);
}

TEST(Driver, TimeLimitCutsOff) {
  RandomSearchOptions rs_options;
  rs_options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), rs_options);
  LinearEnv env;
  DriverOptions options;
  options.num_workers = 1;
  options.time_limit = 35;
  SimulationDriver driver(scheduler, env, options);
  const auto result = driver.Run();
  EXPECT_EQ(result.jobs_completed, 3u);  // 10, 20, 30; the 4th would end at 40
  EXPECT_LE(result.end_time, 35.0);
}

TEST(Driver, RecommendationsRecordedOnChange) {
  RandomSearchOptions rs_options;
  rs_options.R = 10;
  rs_options.max_trials = 20;
  rs_options.seed = 9;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), rs_options);
  LinearEnv env;
  DriverOptions options;
  SimulationDriver driver(scheduler, env, options);
  const auto result = driver.Run();
  ASSERT_FALSE(result.recommendations.empty());
  // Recommendation losses only improve.
  for (std::size_t i = 1; i < result.recommendations.size(); ++i) {
    EXPECT_LT(result.recommendations[i].loss,
              result.recommendations[i - 1].loss);
  }
  // Fewer recommendation points than completions (only changes recorded).
  EXPECT_LE(result.recommendations.size(), result.completions.size());
}

TEST(Driver, DropsAreReportedLost) {
  RandomSearchOptions rs_options;
  rs_options.R = 100;
  rs_options.max_trials = 50;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), rs_options);
  LinearEnv env;
  DriverOptions options;
  options.num_workers = 5;
  options.hazards.drop_probability = 0.02;  // ~87% of 100-unit jobs drop
  SimulationDriver driver(scheduler, env, options);
  const auto result = driver.Run();
  EXPECT_GT(result.jobs_dropped, 20u);
  EXPECT_EQ(result.jobs_completed + result.jobs_dropped, 50u);
  std::size_t lost = 0;
  for (const auto& trial : scheduler.trials()) {
    lost += trial.status == TrialStatus::kLost;
  }
  EXPECT_EQ(lost, result.jobs_dropped);
}

TEST(Driver, DeterministicAcrossRuns) {
  auto run_once = [] {
    RandomSearchOptions rs_options;
    rs_options.R = 10;
    rs_options.max_trials = 30;
    RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                    rs_options);
    LinearEnv env;
    DriverOptions options;
    options.num_workers = 4;
    options.hazards.straggler_std = 0.5;
    options.hazards.drop_probability = 0.001;
    SimulationDriver driver(scheduler, env, options);
    return driver.Run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.completions[i].end_time, b.completions[i].end_time);
    EXPECT_EQ(a.completions[i].trial_id, b.completions[i].trial_id);
    EXPECT_EQ(a.completions[i].lost, b.completions[i].lost);
  }
}

TEST(Driver, ReusedSimContextMatchesFreshRuns) {
  // The sweep engine's hot path: one SimContext carried across studies with
  // different engines and fleet sizes (shrinking and growing the reused
  // storage) must replay each study exactly as a cold context would.
  auto run = [](SimContext* context, SimEngine engine, int workers) {
    RandomSearchOptions rs_options;
    rs_options.R = 10;
    rs_options.max_trials = 40;
    RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()),
                                    rs_options);
    LinearEnv env;
    DriverOptions options;
    options.num_workers = workers;
    options.event_queue = engine;
    options.hazards.straggler_std = 0.5;
    options.hazards.drop_probability = 0.001;
    SimulationDriver driver(scheduler, env, options);
    return context != nullptr ? driver.Run(*context) : driver.Run();
  };
  SimContext context;
  for (const SimEngine engine :
       {SimEngine::kBinaryHeap, SimEngine::kCalendar}) {
    for (const int workers : {7, 3, 16}) {
      const auto fresh = run(nullptr, engine, workers);
      const auto reused = run(&context, engine, workers);
      EXPECT_DOUBLE_EQ(fresh.end_time, reused.end_time);
      EXPECT_EQ(fresh.jobs_completed, reused.jobs_completed);
      EXPECT_EQ(fresh.jobs_dropped, reused.jobs_dropped);
      ASSERT_EQ(fresh.completions.size(), reused.completions.size());
      for (std::size_t i = 0; i < fresh.completions.size(); ++i) {
        EXPECT_DOUBLE_EQ(fresh.completions[i].end_time,
                         reused.completions[i].end_time);
        EXPECT_EQ(fresh.completions[i].trial_id,
                  reused.completions[i].trial_id);
        EXPECT_EQ(fresh.completions[i].lost, reused.completions[i].lost);
      }
    }
  }
}

TEST(Driver, StragglersDelaySyncShaMoreThanAsha) {
  // Appendix A.1 in miniature: time until the first configuration is
  // trained to R, with heavy stragglers and ample workers (the large-scale
  // regime). Synchronous SHA waits out the slowest job of every rung;
  // ASHA promotes as soon as results allow.
  auto first_full_completion = [](Scheduler& scheduler) {
    LinearEnv env;
    DriverOptions options;
    options.num_workers = 64;
    options.hazards.straggler_std = 1.5;
    options.time_limit = 1500;
    SimulationDriver driver(scheduler, env, options);
    const auto result = driver.Run();
    for (const auto& completion : result.completions) {
      if (!completion.lost && completion.to_resource >= 81.0) {
        return completion.end_time;
      }
    }
    return options.time_limit * 2;  // never
  };

  AshaOptions asha_options;
  asha_options.r = 1;
  asha_options.R = 81;
  asha_options.eta = 3;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), asha_options);

  ShaOptions sha_options;
  sha_options.n = 81;
  sha_options.r = 1;
  sha_options.R = 81;
  sha_options.eta = 3;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), sha_options);

  EXPECT_LE(first_full_completion(asha), first_full_completion(sha));
}

TEST(Driver, WorkerConservation) {
  // Busy time can never exceed workers * end_time.
  AshaOptions asha_options;
  asha_options.r = 1;
  asha_options.R = 27;
  asha_options.eta = 3;
  AshaScheduler scheduler(MakeRandomSampler(UnitSpace()), asha_options);
  LinearEnv env;
  DriverOptions options;
  options.num_workers = 4;
  options.time_limit = 500;
  SimulationDriver driver(scheduler, env, options);
  const auto result = driver.Run();
  EXPECT_LE(result.busy_time,
            4.0 * result.end_time + 1e-9);
  EXPECT_GT(result.jobs_completed, 10u);
}

TEST(Driver, MaxCompletedJobsStops) {
  RandomSearchOptions rs_options;
  rs_options.R = 10;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), rs_options);
  LinearEnv env;
  DriverOptions options;
  options.max_completed_jobs = 7;
  SimulationDriver driver(scheduler, env, options);
  const auto result = driver.Run();
  EXPECT_EQ(result.jobs_completed, 7u);
}

TEST(Driver, OptionValidation) {
  RandomSearchOptions rs_options;
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), rs_options);
  LinearEnv env;
  DriverOptions options;
  options.num_workers = 0;
  EXPECT_THROW(SimulationDriver(scheduler, env, options), CheckError);
}

}  // namespace
}  // namespace hypertune
