// The simulator-engine contract (DESIGN.md §9): the binary heap and the
// calendar queue pop in exactly ascending (end, seq) order, so swapping the
// engine can never change a scheduling decision. These tests hold the two
// queues to identical pop sequences on randomized driver-like workloads,
// pin the idle-worker set's lowest-index-first order, and check the
// stranded in-flight accounting added to DriverResult.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/asha.h"
#include "sim/driver.h"
#include "sim/event_queue.h"
#include "telemetry/telemetry.h"

namespace hypertune {
namespace {

// Drains both queues under a driver-shaped workload: pop the earliest
// event, then push a few new events at or after the popped time (the
// monotone-time precondition the driver guarantees). Quantized end times
// force frequent same-tick ties that only the seq number breaks.
void CheckIdenticalPopOrder(std::uint64_t seed, bool skip_ahead,
                            std::size_t expected_events, bool quantize) {
  Rng rng(seed);
  BinaryEventHeap heap;
  CalendarEventQueue calendar(
      {.expected_events = expected_events, .skip_ahead = skip_ahead});

  std::uint64_t seq = 0;
  double now = 0;
  auto push_one = [&] {
    double end = now + rng.Uniform(0.0, 100.0);
    if (quantize) end = now + static_cast<double>(rng.UniformInt(0, 5));
    const SimEvent event{end, seq++, static_cast<std::uint32_t>(seq % 64)};
    heap.Push(event);
    calendar.Push(event);
  };

  for (int i = 0; i < 50; ++i) push_one();
  int popped = 0;
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    const SimEvent a = heap.Top();
    const SimEvent b = calendar.Top();
    ASSERT_EQ(a.end, b.end) << "pop " << popped;
    ASSERT_EQ(a.seq, b.seq) << "pop " << popped;
    ASSERT_EQ(a.slot, b.slot) << "pop " << popped;
    heap.PopTop();
    calendar.PopTop();
    now = a.end;
    ++popped;
    if (popped < 2000) {
      const std::int64_t births = rng.UniformInt(0, 3);
      for (std::int64_t i = 0; i < births; ++i) push_one();
    }
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_GE(popped, 2000);
}

TEST(EventQueueProperty, HeapAndCalendarPopIdentically) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    CheckIdenticalPopOrder(seed, /*skip_ahead=*/true, /*expected_events=*/64,
                           /*quantize=*/false);
  }
}

TEST(EventQueueProperty, SameTickTiesBreakBySeq) {
  // Quantized ends put many events on the same instant; FIFO seq order is
  // the only thing separating them.
  for (std::uint64_t seed = 10; seed <= 17; ++seed) {
    CheckIdenticalPopOrder(seed, /*skip_ahead=*/true, /*expected_events=*/16,
                           /*quantize=*/true);
  }
}

TEST(EventQueueProperty, SkipAheadOffPopsIdentically) {
  CheckIdenticalPopOrder(21, /*skip_ahead=*/false, /*expected_events=*/64,
                         /*quantize=*/false);
  CheckIdenticalPopOrder(22, /*skip_ahead=*/false, /*expected_events=*/4,
                         /*quantize=*/true);
}

TEST(EventQueue, CalendarHandlesWideIdleGaps) {
  // Sparse ends that jump far past the calendar's adapted year exercise
  // the skip-ahead / direct-search path.
  CalendarEventQueue calendar({.expected_events = 4, .skip_ahead = true});
  BinaryEventHeap heap;
  double now = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const SimEvent event{now + 1.0 + static_cast<double>(seq % 3) * 1e6, seq,
                         static_cast<std::uint32_t>(seq % 8)};
    heap.Push(event);
    calendar.Push(event);
    if (seq % 2 == 1) {
      ASSERT_EQ(heap.Top().seq, calendar.Top().seq);
      now = heap.Top().end;
      heap.PopTop();
      calendar.PopTop();
    }
  }
  while (!heap.empty()) {
    ASSERT_EQ(heap.Top().seq, calendar.Top().seq);
    heap.PopTop();
    calendar.PopTop();
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(EventQueue, CalendarRejectsPushBelowFloor) {
  CalendarEventQueue calendar({.expected_events = 4});
  calendar.Push({10.0, 0, 0});
  calendar.Push({20.0, 1, 1});
  calendar.PopTop();  // floor is now 10
  EXPECT_THROW(calendar.Push({5.0, 2, 2}), CheckError);
}

TEST(IdleWorkerSet, PopsLowestIndexFirst) {
  // 130 workers spans three 64-bit words, exercising the summary level.
  IdleWorkerSet idle(130);
  for (int i = 0; i < 130; ++i) {
    ASSERT_FALSE(idle.empty());
    EXPECT_EQ(idle.PopLowest(), i);
  }
  EXPECT_TRUE(idle.empty());

  idle.Insert(129);
  idle.Insert(64);
  idle.Insert(3);
  EXPECT_EQ(idle.PopLowest(), 3);
  EXPECT_EQ(idle.PopLowest(), 64);
  EXPECT_EQ(idle.PopLowest(), 129);
  EXPECT_TRUE(idle.empty());
}

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

/// Loss = the config's x value; duration = resource increment.
class LinearEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    (void)resource;
    return config.GetDouble("x");
  }
  double Duration(const Configuration& config, Resource from,
                  Resource to) override {
    (void)config;
    return to - from;
  }
};

AshaOptions SmallAsha() {
  AshaOptions options;
  options.R = 27;
  options.eta = 3;
  options.max_trials = 40;
  return options;
}

struct EngineRun {
  DriverResult result;
  std::string jsonl;
};

EngineRun RunAsha(SimEngine engine, bool batch, int workers,
                  std::size_t max_jobs = 0) {
  AshaScheduler scheduler(MakeRandomSampler(UnitSpace()), SmallAsha());
  LinearEnv env;
  auto telemetry = Telemetry::ForSimulation();
  DriverOptions options;
  options.num_workers = workers;
  options.telemetry = telemetry.get();
  options.event_queue = engine;
  options.batch_telemetry = batch;
  options.max_completed_jobs = max_jobs;
  SimulationDriver driver(scheduler, env, options);
  EngineRun run;
  run.result = driver.Run();
  run.jsonl = telemetry->tracer().ToJsonl();
  return run;
}

void ExpectSameDecisions(const EngineRun& a, const EngineRun& b) {
  ASSERT_EQ(a.result.completions.size(), b.result.completions.size());
  for (std::size_t i = 0; i < a.result.completions.size(); ++i) {
    const RunRecord& x = a.result.completions[i];
    const RunRecord& y = b.result.completions[i];
    ASSERT_EQ(x.trial_id, y.trial_id) << "job " << i;
    ASSERT_EQ(x.rung, y.rung) << "job " << i;
    ASSERT_EQ(x.worker, y.worker) << "job " << i;
    ASSERT_EQ(x.start_time, y.start_time) << "job " << i;
    ASSERT_EQ(x.end_time, y.end_time) << "job " << i;
    ASSERT_EQ(x.loss, y.loss) << "job " << i;
    ASSERT_EQ(x.lost, y.lost) << "job " << i;
  }
  ASSERT_EQ(a.result.recommendations.size(), b.result.recommendations.size());
  EXPECT_EQ(a.result.end_time, b.result.end_time);
  EXPECT_EQ(a.result.jobs_completed, b.result.jobs_completed);
  // The telemetry export — spans, instants, metadata — must be
  // byte-identical, not merely equivalent.
  EXPECT_EQ(a.jsonl, b.jsonl);
}

TEST(EngineEquivalence, CalendarMatchesHeapByteForByte) {
  for (const int workers : {1, 4, 16}) {
    const EngineRun heap = RunAsha(SimEngine::kBinaryHeap, true, workers);
    const EngineRun calendar = RunAsha(SimEngine::kCalendar, true, workers);
    ExpectSameDecisions(heap, calendar);
  }
}

TEST(EngineEquivalence, BatchedTelemetryMatchesUnbatched) {
  const EngineRun batched = RunAsha(SimEngine::kBinaryHeap, true, 8);
  const EngineRun unbatched = RunAsha(SimEngine::kBinaryHeap, false, 8);
  ExpectSameDecisions(batched, unbatched);
}

TEST(StrandedAccounting, InFlightJobsAreCountedNotDropped) {
  // Cap completions mid-run with several workers: the jobs still occupying
  // workers at the stop are in flight — not completed, not dropped.
  const EngineRun run =
      RunAsha(SimEngine::kBinaryHeap, true, 8, /*max_jobs=*/10);
  EXPECT_EQ(run.result.jobs_completed, 10u);
  EXPECT_GT(run.result.jobs_in_flight, 0u);
  EXPECT_LE(run.result.jobs_in_flight, 7u);  // at most workers - 1
  EXPECT_EQ(run.result.completions.size(),
            run.result.jobs_completed + run.result.jobs_dropped);
}

TEST(StrandedAccounting, DrainedRunHasNoInFlightJobs) {
  const EngineRun run = RunAsha(SimEngine::kCalendar, true, 4);
  EXPECT_EQ(run.result.jobs_in_flight, 0u);
  EXPECT_GT(run.result.jobs_completed, 0u);
}

TEST(StrandedAccounting, StrandedCounterMatchesResult) {
  AshaScheduler scheduler(MakeRandomSampler(UnitSpace()), SmallAsha());
  LinearEnv env;
  auto telemetry = Telemetry::ForSimulation();
  DriverOptions options;
  options.num_workers = 8;
  options.telemetry = telemetry.get();
  options.max_completed_jobs = 10;
  SimulationDriver driver(scheduler, env, options);
  const DriverResult result = driver.Run();
  ASSERT_GT(result.jobs_in_flight, 0u);
  EXPECT_EQ(telemetry->metrics().counter("driver.jobs_stranded").value(),
            static_cast<std::int64_t>(result.jobs_in_flight));
}

}  // namespace
}  // namespace hypertune
