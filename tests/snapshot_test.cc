// Snapshot/restore: ASHA as a crash-tolerant tuning service.
#include <gtest/gtest.h>

#include <map>

#include "common/check.h"
#include "core/asha.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

AshaOptions ToyOptions() {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.seed = 17;
  return options;
}

/// Deterministic per-trial loss (rank by configuration value).
double LossFor(const AshaScheduler& asha, const Job& job) {
  return asha.trials().Get(job.trial_id).config.GetDouble("x") *
         (1.0 + 1.0 / job.to_resource);
}

TEST(Snapshot, RestoredSchedulerContinuesIdentically) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  // Run 40 synchronous steps.
  for (int step = 0; step < 40; ++step) {
    const auto job = *original.GetJob();
    original.ReportResult(job, LossFor(original, job));
  }
  const Json snapshot = original.Snapshot();

  AshaScheduler restored(MakeRandomSampler(UnitSpace()), ToyOptions());
  restored.Restore(snapshot);

  EXPECT_EQ(restored.trials().size(), original.trials().size());
  EXPECT_EQ(restored.NumTrialsCreated(), original.NumTrialsCreated());
  EXPECT_DOUBLE_EQ(restored.ResourceDispatched(),
                   original.ResourceDispatched());
  ASSERT_TRUE(restored.Current().has_value());
  EXPECT_EQ(restored.Current()->trial_id, original.Current()->trial_id);

  // Both schedulers now produce identical futures.
  for (int step = 0; step < 60; ++step) {
    const auto job_a = *original.GetJob();
    const auto job_b = *restored.GetJob();
    EXPECT_EQ(job_a.trial_id, job_b.trial_id) << "step " << step;
    EXPECT_EQ(job_a.rung, job_b.rung) << "step " << step;
    EXPECT_EQ(job_a.config, job_b.config) << "step " << step;
    original.ReportResult(job_a, LossFor(original, job_a));
    restored.ReportResult(job_b, LossFor(restored, job_b));
  }
}

TEST(Snapshot, SurvivesJsonTextRoundTrip) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  for (int step = 0; step < 25; ++step) {
    const auto job = *original.GetJob();
    original.ReportResult(job, LossFor(original, job));
  }
  // Through text — what a service would write to disk.
  const std::string text = original.Snapshot().Dump(2);
  AshaScheduler restored(MakeRandomSampler(UnitSpace()), ToyOptions());
  restored.Restore(Json::Parse(text));
  const auto job_a = *original.GetJob();
  const auto job_b = *restored.GetJob();
  EXPECT_EQ(job_a.trial_id, job_b.trial_id);
  EXPECT_EQ(job_a.config, job_b.config);
}

TEST(Snapshot, InFlightJobsBecomeLostOnRestore) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  const auto j0 = *original.GetJob();
  original.ReportResult(j0, 0.4);
  const auto in_flight = *original.GetJob();  // never reported
  const Json snapshot = original.Snapshot();

  AshaScheduler restored(MakeRandomSampler(UnitSpace()), ToyOptions());
  restored.Restore(snapshot);
  EXPECT_EQ(restored.trials().Get(in_flight.trial_id).status,
            TrialStatus::kLost);
  EXPECT_EQ(restored.trials().Get(j0.trial_id).status, TrialStatus::kPaused);
  // The restored scheduler keeps working.
  EXPECT_TRUE(restored.GetJob().has_value());
}

TEST(Snapshot, RestoreRejectsUsedScheduler) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  const auto job = *original.GetJob();
  original.ReportResult(job, 0.5);
  const Json snapshot = original.Snapshot();
  // `original` already has trials: restoring into it must fail.
  EXPECT_THROW(original.Restore(snapshot), CheckError);
}

TEST(Snapshot, RestoreRejectsMismatchedBracket) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  const auto job = *original.GetJob();
  original.ReportResult(job, 0.5);
  const Json snapshot = original.Snapshot();

  auto other_options = ToyOptions();
  other_options.eta = 4;  // different bracket shape
  AshaScheduler other(MakeRandomSampler(UnitSpace()), other_options);
  EXPECT_THROW(other.Restore(snapshot), CheckError);
}

TEST(Snapshot, PromotionStateSurvives) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  // Create three results so one promotion becomes available, take it.
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(*original.GetJob());
  original.ReportResult(jobs[0], 0.1);
  original.ReportResult(jobs[1], 0.2);
  original.ReportResult(jobs[2], 0.3);
  const auto promotion = *original.GetJob();
  ASSERT_EQ(promotion.rung, 1);
  original.ReportResult(promotion, 0.05);

  AshaScheduler restored(MakeRandomSampler(UnitSpace()), ToyOptions());
  restored.Restore(original.Snapshot());
  // Trial 0 is already promoted out of rung 0: the restored scheduler must
  // not promote it again.
  const auto next = *restored.GetJob();
  EXPECT_FALSE(next.rung == 1 && next.trial_id == promotion.trial_id);
  EXPECT_TRUE(restored.rung(0).IsPromoted(promotion.trial_id));
  EXPECT_EQ(restored.rung(1).NumRecorded(), 1u);
}

TEST(Snapshot, InfiniteHorizonRoundTrip) {
  auto options = ToyOptions();
  options.infinite_horizon = true;
  AshaScheduler original(MakeRandomSampler(UnitSpace()), options);
  std::map<TrialId, double> losses;
  for (int step = 0; step < 50; ++step) {
    const auto job = *original.GetJob();
    const double loss = losses.contains(job.trial_id)
                            ? losses[job.trial_id] * 0.9
                            : 0.5 + 0.001 * static_cast<double>(job.trial_id);
    losses[job.trial_id] = loss;
    original.ReportResult(job, loss);
  }
  AshaScheduler restored(MakeRandomSampler(UnitSpace()), options);
  restored.Restore(original.Snapshot());
  EXPECT_EQ(restored.NumRungs(), original.NumRungs());
  const auto job_a = *original.GetJob();
  const auto job_b = *restored.GetJob();
  EXPECT_EQ(job_a.trial_id, job_b.trial_id);
  EXPECT_EQ(job_a.rung, job_b.rung);
}

}  // namespace
}  // namespace hypertune
