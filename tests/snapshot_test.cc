// Snapshot/restore: the whole scheduler family as crash-tolerant tuning
// services. Every scheduler that claims SupportsSnapshot() gets the same
// continuation-identity property test: run it, snapshot, restore into a
// fresh instance, and require both to produce byte-identical futures.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>

#include "common/check.h"
#include "core/asha.h"
#include "core/async_hyperband.h"
#include "core/hyperband.h"
#include "core/random_search.h"
#include "core/sha.h"
#include "lifecycle/hazards.h"
#include "lifecycle/lifecycle.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

AshaOptions ToyOptions() {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.seed = 17;
  return options;
}

/// Deterministic per-trial loss (rank by configuration value).
double LossFor(const AshaScheduler& asha, const Job& job) {
  return asha.trials().Get(job.trial_id).config.GetDouble("x") *
         (1.0 + 1.0 / job.to_resource);
}

TEST(Snapshot, RestoredSchedulerContinuesIdentically) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  // Run 40 synchronous steps.
  for (int step = 0; step < 40; ++step) {
    const auto job = *original.GetJob();
    original.ReportResult(job, LossFor(original, job));
  }
  const Json snapshot = original.Snapshot();

  AshaScheduler restored(MakeRandomSampler(UnitSpace()), ToyOptions());
  restored.Restore(snapshot);

  EXPECT_EQ(restored.trials().size(), original.trials().size());
  EXPECT_EQ(restored.NumTrialsCreated(), original.NumTrialsCreated());
  EXPECT_DOUBLE_EQ(restored.ResourceDispatched(),
                   original.ResourceDispatched());
  ASSERT_TRUE(restored.Current().has_value());
  EXPECT_EQ(restored.Current()->trial_id, original.Current()->trial_id);

  // Both schedulers now produce identical futures.
  for (int step = 0; step < 60; ++step) {
    const auto job_a = *original.GetJob();
    const auto job_b = *restored.GetJob();
    EXPECT_EQ(job_a.trial_id, job_b.trial_id) << "step " << step;
    EXPECT_EQ(job_a.rung, job_b.rung) << "step " << step;
    EXPECT_EQ(job_a.config, job_b.config) << "step " << step;
    original.ReportResult(job_a, LossFor(original, job_a));
    restored.ReportResult(job_b, LossFor(restored, job_b));
  }
}

TEST(Snapshot, SurvivesJsonTextRoundTrip) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  for (int step = 0; step < 25; ++step) {
    const auto job = *original.GetJob();
    original.ReportResult(job, LossFor(original, job));
  }
  // Through text — what a service would write to disk.
  const std::string text = original.Snapshot().Dump(2);
  AshaScheduler restored(MakeRandomSampler(UnitSpace()), ToyOptions());
  restored.Restore(Json::Parse(text));
  const auto job_a = *original.GetJob();
  const auto job_b = *restored.GetJob();
  EXPECT_EQ(job_a.trial_id, job_b.trial_id);
  EXPECT_EQ(job_a.config, job_b.config);
}

TEST(Snapshot, InFlightJobsBecomeLostOnRestore) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  const auto j0 = *original.GetJob();
  original.ReportResult(j0, 0.4);
  const auto in_flight = *original.GetJob();  // never reported
  const Json snapshot = original.Snapshot();

  AshaScheduler restored(MakeRandomSampler(UnitSpace()), ToyOptions());
  restored.Restore(snapshot);
  EXPECT_EQ(restored.trials().Get(in_flight.trial_id).status,
            TrialStatus::kLost);
  EXPECT_EQ(restored.trials().Get(j0.trial_id).status, TrialStatus::kPaused);
  // The restored scheduler keeps working.
  EXPECT_TRUE(restored.GetJob().has_value());
}

TEST(Snapshot, RestoreRejectsUsedScheduler) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  const auto job = *original.GetJob();
  original.ReportResult(job, 0.5);
  const Json snapshot = original.Snapshot();
  // `original` already has trials: restoring into it must fail.
  EXPECT_THROW(original.Restore(snapshot), CheckError);
}

TEST(Snapshot, RestoreRejectsMismatchedBracket) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  const auto job = *original.GetJob();
  original.ReportResult(job, 0.5);
  const Json snapshot = original.Snapshot();

  auto other_options = ToyOptions();
  other_options.eta = 4;  // different bracket shape
  AshaScheduler other(MakeRandomSampler(UnitSpace()), other_options);
  EXPECT_THROW(other.Restore(snapshot), CheckError);
}

TEST(Snapshot, PromotionStateSurvives) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  // Create three results so one promotion becomes available, take it.
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(*original.GetJob());
  original.ReportResult(jobs[0], 0.1);
  original.ReportResult(jobs[1], 0.2);
  original.ReportResult(jobs[2], 0.3);
  const auto promotion = *original.GetJob();
  ASSERT_EQ(promotion.rung, 1);
  original.ReportResult(promotion, 0.05);

  AshaScheduler restored(MakeRandomSampler(UnitSpace()), ToyOptions());
  restored.Restore(original.Snapshot());
  // Trial 0 is already promoted out of rung 0: the restored scheduler must
  // not promote it again.
  const auto next = *restored.GetJob();
  EXPECT_FALSE(next.rung == 1 && next.trial_id == promotion.trial_id);
  EXPECT_TRUE(restored.rung(0).IsPromoted(promotion.trial_id));
  EXPECT_EQ(restored.rung(1).NumRecorded(), 1u);
}

TEST(Snapshot, InfiniteHorizonRoundTrip) {
  auto options = ToyOptions();
  options.infinite_horizon = true;
  AshaScheduler original(MakeRandomSampler(UnitSpace()), options);
  std::map<TrialId, double> losses;
  for (int step = 0; step < 50; ++step) {
    const auto job = *original.GetJob();
    const double loss = losses.contains(job.trial_id)
                            ? losses[job.trial_id] * 0.9
                            : 0.5 + 0.001 * static_cast<double>(job.trial_id);
    losses[job.trial_id] = loss;
    original.ReportResult(job, loss);
  }
  AshaScheduler restored(MakeRandomSampler(UnitSpace()), options);
  restored.Restore(original.Snapshot());
  EXPECT_EQ(restored.NumRungs(), original.NumRungs());
  const auto job_a = *original.GetJob();
  const auto job_b = *restored.GetJob();
  EXPECT_EQ(job_a.trial_id, job_b.trial_id);
  EXPECT_EQ(job_a.rung, job_b.rung);
}

// ---------------------------------------------------------------------------
// Family-wide continuation identity: any SupportsSnapshot scheduler, run for
// `warm_steps` synchronous steps, snapshotted, and restored into a fresh
// instance, must produce the same job sequence as the original for
// `check_steps` more steps.

double FamilyLoss(const Scheduler& scheduler, const Job& job) {
  return scheduler.trials().Get(job.trial_id).config.GetDouble("x") *
         (1.0 + 1.0 / job.to_resource);
}

void ExpectContinuationIdentity(
    const std::function<std::unique_ptr<Scheduler>()>& make, int warm_steps,
    int check_steps) {
  auto original = make();
  ASSERT_TRUE(original->SupportsSnapshot());
  for (int step = 0; step < warm_steps; ++step) {
    const auto job = original->GetJob();
    if (!job) break;
    original->ReportResult(*job, FamilyLoss(*original, *job));
  }
  auto restored = make();
  // Through text, like the durable server's snapshot files.
  restored->Restore(Json::Parse(original->Snapshot().Dump()));

  EXPECT_EQ(restored->trials().size(), original->trials().size());
  EXPECT_EQ(restored->Current().has_value(), original->Current().has_value());
  if (original->Current()) {
    EXPECT_EQ(restored->Current()->trial_id, original->Current()->trial_id);
  }
  for (int step = 0; step < check_steps; ++step) {
    const auto job_a = original->GetJob();
    const auto job_b = restored->GetJob();
    ASSERT_EQ(job_a.has_value(), job_b.has_value()) << "step " << step;
    if (!job_a) break;
    EXPECT_EQ(job_a->trial_id, job_b->trial_id) << "step " << step;
    EXPECT_EQ(job_a->rung, job_b->rung) << "step " << step;
    EXPECT_EQ(job_a->config, job_b->config) << "step " << step;
    original->ReportResult(*job_a, FamilyLoss(*original, *job_a));
    restored->ReportResult(*job_b, FamilyLoss(*restored, *job_b));
  }
  EXPECT_EQ(restored->Finished(), original->Finished());
}

TEST(SnapshotFamily, SyncShaContinuesIdentically) {
  ExpectContinuationIdentity(
      []() -> std::unique_ptr<Scheduler> {
        ShaOptions options;
        options.n = 9;
        options.r = 1;
        options.R = 9;
        options.eta = 3;
        options.seed = 11;
        return std::make_unique<SyncShaScheduler>(
            MakeRandomSampler(UnitSpace()), options);
      },
      /*warm_steps=*/20, /*check_steps=*/30);
}

TEST(SnapshotFamily, SingleBracketShaContinuesIdentically) {
  ExpectContinuationIdentity(
      []() -> std::unique_ptr<Scheduler> {
        ShaOptions options;
        options.n = 9;
        options.r = 1;
        options.R = 9;
        options.eta = 3;
        options.spawn_new_brackets = false;
        options.seed = 11;
        return std::make_unique<SyncShaScheduler>(
            MakeRandomSampler(UnitSpace()), options);
      },
      /*warm_steps=*/7, /*check_steps=*/20);
}

TEST(SnapshotFamily, HyperbandContinuesIdentically) {
  ExpectContinuationIdentity(
      []() -> std::unique_ptr<Scheduler> {
        HyperbandOptions options;
        options.n0 = 9;
        options.r = 1;
        options.R = 9;
        options.eta = 3;
        options.seed = 7;
        return std::make_unique<HyperbandScheduler>(
            MakeRandomSampler(UnitSpace()), options);
      },
      /*warm_steps=*/35, /*check_steps=*/40);
}

TEST(SnapshotFamily, AsyncHyperbandContinuesIdentically) {
  ExpectContinuationIdentity(
      []() -> std::unique_ptr<Scheduler> {
        AsyncHyperbandOptions options;
        options.n0 = 9;
        options.r = 1;
        options.R = 9;
        options.eta = 3;
        options.seed = 7;
        return std::make_unique<AsyncHyperbandScheduler>(
            MakeRandomSampler(UnitSpace()), options);
      },
      /*warm_steps=*/30, /*check_steps=*/40);
}

TEST(SnapshotFamily, RandomSearchContinuesIdentically) {
  ExpectContinuationIdentity(
      []() -> std::unique_ptr<Scheduler> {
        RandomSearchOptions options;
        options.R = 4;
        options.max_trials = 50;
        options.seed = 23;
        return std::make_unique<RandomSearchScheduler>(
            MakeRandomSampler(UnitSpace()), options);
      },
      /*warm_steps=*/15, /*check_steps=*/40);
}

TEST(SnapshotFamily, ShaInFlightJobsBecomeLostOnRestore) {
  ShaOptions options;
  options.n = 9;
  options.r = 1;
  options.R = 9;
  options.eta = 3;
  options.seed = 11;
  SyncShaScheduler original(MakeRandomSampler(UnitSpace()), options);
  const auto reported = *original.GetJob();
  original.ReportResult(reported, 0.4);
  const auto in_flight = *original.GetJob();  // crashes with the worker

  SyncShaScheduler restored(MakeRandomSampler(UnitSpace()), options);
  restored.Restore(original.Snapshot());  // default policy: drop in-flight
  EXPECT_EQ(restored.trials().Get(in_flight.trial_id).status,
            TrialStatus::kLost);
  // The dropped job settles through ReportLost, so the bracket keeps
  // making progress instead of waiting on a ghost.
  EXPECT_TRUE(restored.GetJob().has_value());
}

TEST(SnapshotFamily, KeepInFlightPreservesOpenJobs) {
  AshaScheduler original(MakeRandomSampler(UnitSpace()), ToyOptions());
  const auto in_flight = *original.GetJob();
  const Json snapshot = original.Snapshot();

  AshaScheduler restored(MakeRandomSampler(UnitSpace()), ToyOptions());
  restored.Restore(snapshot, RestorePolicy::kKeepInFlight);
  // The lease survives on paper: the trial is still running and its
  // eventual report is accepted exactly as the original would accept it.
  EXPECT_EQ(restored.trials().Get(in_flight.trial_id).status,
            TrialStatus::kRunning);
  restored.ReportResult(in_flight, 0.3);
  original.ReportResult(in_flight, 0.3);
  const auto job_a = *original.GetJob();
  const auto job_b = *restored.GetJob();
  EXPECT_EQ(job_a.trial_id, job_b.trial_id);
  EXPECT_EQ(job_a.config, job_b.config);
}

TEST(SnapshotFamily, LifecycleRoundTripsRecordsAndLeases) {
  AshaScheduler scheduler_a(MakeRandomSampler(UnitSpace()), ToyOptions());
  TrialLifecycle lifecycle_a(
      scheduler_a, LifecycleOptions{.track_recommendations = true});
  const auto lease1 = *lifecycle_a.Acquire();
  lifecycle_a.Complete(lease1, 0.3, RunTiming{0, 1, 0, 0});
  const auto lease2 = *lifecycle_a.Acquire();  // left open across the crash

  AshaScheduler scheduler_b(MakeRandomSampler(UnitSpace()), ToyOptions());
  scheduler_b.Restore(scheduler_a.Snapshot(), RestorePolicy::kKeepInFlight);
  TrialLifecycle lifecycle_b(
      scheduler_b, LifecycleOptions{.track_recommendations = true});
  lifecycle_b.Restore(Json::Parse(lifecycle_a.Snapshot().Dump()));

  ASSERT_EQ(lifecycle_b.records().size(), 1u);
  EXPECT_EQ(lifecycle_b.records()[0].trial_id, lease1.job.trial_id);
  EXPECT_EQ(lifecycle_b.records()[0].lease_id, lease1.lease_id);
  EXPECT_EQ(lifecycle_b.pending_leases(), 1u);
  EXPECT_EQ(lifecycle_b.completed_jobs(), 1u);
  EXPECT_EQ(lifecycle_b.recommendations().size(),
            lifecycle_a.recommendations().size());
  // The open lease resolves exactly once on both sides, then the dense
  // lease-id counter continues where it left off.
  lifecycle_a.Complete(lease2, 0.2, RunTiming{1, 2, 0, 0});
  lifecycle_b.Complete(lease2, 0.2, RunTiming{1, 2, 0, 0});
  EXPECT_THROW(lifecycle_b.Complete(lease2, 0.2, RunTiming{}), CheckError);
  const auto next_a = *lifecycle_a.Acquire();
  const auto next_b = *lifecycle_b.Acquire();
  EXPECT_EQ(next_b.lease_id, next_a.lease_id);
  EXPECT_EQ(next_b.job.trial_id, next_a.job.trial_id);
}

TEST(SnapshotFamily, HazardInjectorRoundTripsRngStream) {
  HazardOptions options;
  options.straggler_std = 0.5;
  options.drop_probability = 0.05;
  HazardInjector original(options, 99);
  // Draw an odd number of normals so a Box–Muller spare is in flight.
  for (int i = 0; i < 7; ++i) original.Plan(1.0);

  HazardInjector restored(options, 99);
  restored.Restore(Json::Parse(original.Snapshot().Dump()));
  for (int i = 0; i < 20; ++i) {
    const HazardPlan plan_a = original.Plan(1.0 + 0.1 * i);
    const HazardPlan plan_b = restored.Plan(1.0 + 0.1 * i);
    EXPECT_EQ(plan_a.duration, plan_b.duration) << "draw " << i;
    EXPECT_EQ(plan_a.drop_after.has_value(), plan_b.drop_after.has_value());
    if (plan_a.drop_after) {
      EXPECT_EQ(*plan_a.drop_after, *plan_b.drop_after);
    }
  }
}

}  // namespace
}  // namespace hypertune
