// Multi-tenant StudyManager: message routing by study id, the admin
// vocabulary, suspension (leases freeze, deadlines shift on resume),
// per-study quotas, "*" fair allocation, shard-count invariance, and
// per-study durability (recovery, tombstoned deletes, held-report routing
// across a server restart).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/random_search.h"
#include "core/sampler.h"
#include "searchspace/space.h"
#include "service/server.h"
#include "service/worker.h"
#include "study/study_manager.h"

namespace hypertune {
namespace {

SearchSpace StudySpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

/// Fresh (empty) per-test directory under the gtest temp root.
std::string FreshDir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / "ht_study" /
                   name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

Json RandomConfig(std::int64_t seed) {
  Json config = JsonObject{};
  config.Set("kind", Json("random"));
  config.Set("seed", Json(seed));
  return config;
}

StudyManagerOptions BaseOptions() {
  StudyManagerOptions options;
  options.server.lease_timeout = 30;
  options.default_config = RandomConfig(1);
  return options;
}

Json RequestJob(std::uint64_t worker, const std::string& study = {}) {
  Json message = JsonObject{};
  message.Set("type", Json("request_job"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  if (!study.empty()) message.Set("study", Json(study));
  return message;
}

Json RequestJobs(std::uint64_t worker, std::int64_t count,
                 const std::string& study = {}) {
  Json message = JsonObject{};
  message.Set("type", Json("request_jobs"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("count", Json(count));
  if (!study.empty()) message.Set("study", Json(study));
  return message;
}

Json Report(std::uint64_t worker, std::int64_t job_id, double loss,
            const std::string& study = {}) {
  Json message = JsonObject{};
  message.Set("type", Json("report"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  message.Set("loss", Json(loss));
  if (!study.empty()) message.Set("study", Json(study));
  return message;
}

Json Heartbeat(std::uint64_t worker, std::int64_t job_id,
               const std::string& study = {}) {
  Json message = JsonObject{};
  message.Set("type", Json("heartbeat"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  if (!study.empty()) message.Set("study", Json(study));
  return message;
}

Json Admin(const char* type, const std::string& study) {
  Json message = JsonObject{};
  message.Set("type", Json(type));
  message.Set("study", Json(study));
  return message;
}

std::string ReplyType(const Json& reply) {
  return reply.at("type").AsString();
}

// ---------------------------------------------------------------------------
// Routing.

TEST(StudyManager, DefaultStudySpeaksThePreManagerProtocol) {
  // A study-less client against the manager must see byte-identical replies
  // to the same client against a bare TuningServer with the same scheduler.
  StudyManagerOptions options = BaseOptions();
  options.default_config = RandomConfig(7);
  StudyManager manager(MakeStudySchedulerFactory(StudySpace()), options);

  RandomSearchOptions search;
  search.seed = 7;
  search.R = 81;  // the factory's default budget
  RandomSearchScheduler scheduler(MakeRandomSampler(StudySpace()), search);
  TuningServer server(scheduler, {.lease_timeout = 30});

  for (int round = 0; round < 20; ++round) {
    const double now = round * 1.5;
    const Json request = RequestJob(1 + round % 3);
    const Json via_manager = manager.HandleMessage(request, now);
    const Json via_server = server.HandleMessage(request, now);
    ASSERT_EQ(via_manager.Dump(), via_server.Dump());
    if (ReplyType(via_manager) != "job") continue;
    const std::int64_t job_id = via_manager.at("job_id").AsInt();
    const Json report = Report(1 + round % 3, job_id, 1.0 / (1 + round));
    EXPECT_EQ(manager.HandleMessage(report, now + 0.5).Dump(),
              server.HandleMessage(report, now + 0.5).Dump());
  }
  EXPECT_EQ(manager.study_count(), 1u);
}

TEST(StudyManager, RoutesScopedMessagesToTheirStudy) {
  StudyManager manager(MakeStudySchedulerFactory(StudySpace()),
                       BaseOptions());
  ASSERT_TRUE(manager.CreateStudy("alpha", RandomConfig(2), 0.0));
  ASSERT_TRUE(manager.CreateStudy("beta", RandomConfig(3), 0.0));

  const Json a_grant = manager.HandleMessage(RequestJob(1, "alpha"), 0.0);
  ASSERT_EQ(ReplyType(a_grant), "job");
  const Json b_grant = manager.HandleMessage(RequestJob(2, "beta"), 0.0);
  ASSERT_EQ(ReplyType(b_grant), "job");

  // Reports route back by their study key; completing alpha's job must not
  // touch beta's accounting.
  const Json ack = manager.HandleMessage(
      Report(1, a_grant.at("job_id").AsInt(), 0.5, "alpha"), 1.0);
  EXPECT_EQ(ReplyType(ack), "ack");

  const auto infos = manager.ListStudies();
  ASSERT_EQ(infos.size(), 3u);  // alpha, beta, default
  EXPECT_EQ(infos[0].name, "alpha");
  EXPECT_EQ(infos[0].jobs_assigned, 1u);
  EXPECT_EQ(infos[0].jobs_completed, 1u);
  EXPECT_EQ(infos[0].active_leases, 0u);
  EXPECT_EQ(infos[1].name, "beta");
  EXPECT_EQ(infos[1].jobs_assigned, 1u);
  EXPECT_EQ(infos[1].jobs_completed, 0u);
  EXPECT_EQ(infos[1].active_leases, 1u);
  EXPECT_EQ(infos[2].name, "default");
  EXPECT_EQ(infos[2].jobs_assigned, 0u);
}

TEST(StudyManager, RejectsUnknownAndMalformed) {
  StudyManager manager(MakeStudySchedulerFactory(StudySpace()),
                       BaseOptions());

  const Json unknown = manager.HandleMessage(RequestJob(1, "nope"), 0.0);
  EXPECT_EQ(ReplyType(unknown), "error");
  EXPECT_NE(unknown.at("message").AsString().find("unknown study 'nope'"),
            std::string::npos);
  EXPECT_EQ(manager.stats().unknown_study_errors, 1u);

  // Names double as directory names; traversal and empty names are invalid.
  const std::vector<std::string> bad_names = {
      "", ".", "..", "a/b", "sp ace", std::string(129, 'x')};
  for (const std::string& bad : bad_names) {
    Json create = Admin("create_study", bad);
    create.Set("config", RandomConfig(1));
    EXPECT_EQ(ReplyType(manager.HandleMessage(create, 0.0)), "error")
        << "name: '" << bad << "'";
  }

  Json duplicate = Admin("create_study", "default");
  duplicate.Set("config", RandomConfig(1));
  const Json dup_reply = manager.HandleMessage(duplicate, 0.0);
  EXPECT_EQ(ReplyType(dup_reply), "error");
  EXPECT_NE(dup_reply.at("message").AsString().find("already exists"),
            std::string::npos);

  Json bad_config = Admin("create_study", "weird");
  Json config = JsonObject{};
  config.Set("kind", Json("simulated-annealing"));
  bad_config.Set("config", config);
  const Json rejected = manager.HandleMessage(bad_config, 0.0);
  EXPECT_EQ(ReplyType(rejected), "error");
  EXPECT_EQ(manager.study_count(), 1u);

  for (const char* verb : {"suspend_study", "resume_study", "delete_study"}) {
    EXPECT_EQ(ReplyType(manager.HandleMessage(Admin(verb, "ghost"), 0.0)),
              "error");
  }

  // A hostile payload earns an error reply, never a dead service.
  EXPECT_EQ(ReplyType(manager.HandleMessage(Json("not an object"), 0.0)),
            "error");
  Json no_type = JsonObject{};
  no_type.Set("worker", Json(std::int64_t{1}));
  EXPECT_EQ(ReplyType(manager.HandleMessage(no_type, 0.0)), "error");
}

// ---------------------------------------------------------------------------
// Suspension: leases freeze, deadlines shift on resume.

TEST(StudySuspension, FreezesLeasesUntilResumeShiftsDeadlines) {
  StudyManager manager(MakeStudySchedulerFactory(StudySpace()),
                       BaseOptions());
  ASSERT_TRUE(manager.CreateStudy("paused", RandomConfig(5), 0.0));

  const Json grant_a = manager.HandleMessage(RequestJob(1, "paused"), 0.0);
  const Json grant_b = manager.HandleMessage(RequestJob(2, "paused"), 0.0);
  ASSERT_EQ(ReplyType(grant_a), "job");
  ASSERT_EQ(ReplyType(grant_b), "job");

  ASSERT_TRUE(manager.SuspendStudy("paused", 5.0));

  // The satellite regression: an idle-expiry tick far past the deadlines
  // must not expire a suspended study's leases.
  manager.Tick(1000.0);
  TuningServer* server = manager.FindServer("paused");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->stats().active_leases, 2u);
  EXPECT_EQ(server->stats().leases_expired, 0u);

  // Grants stop while suspended...
  EXPECT_EQ(ReplyType(manager.HandleMessage(RequestJob(3, "paused"), 1000.0)),
            "no_job");
  // ...but a finished result is still accepted — and its internal tick
  // must not expire the sibling lease either (reports carry `now` far past
  // the frozen deadlines).
  const Json ack = manager.HandleMessage(
      Report(1, grant_a.at("job_id").AsInt(), 0.25, "paused"), 1000.0);
  ASSERT_EQ(ReplyType(ack), "ack");
  EXPECT_FALSE(ack.Has("stale"));
  EXPECT_EQ(server->stats().active_leases, 1u);
  EXPECT_EQ(server->stats().leases_expired, 0u);

  // Resume at t=1005 after suspending at t=5: every open deadline shifts
  // by the 1000s pause. Lease b was due at t=30, so it is now due at 1030.
  ASSERT_TRUE(manager.ResumeStudy("paused", 1005.0));
  manager.Tick(1025.0);
  EXPECT_EQ(server->stats().active_leases, 1u);
  manager.Tick(1035.0);
  EXPECT_EQ(server->stats().active_leases, 0u);
  EXPECT_EQ(server->stats().leases_expired, 1u);

  // Suspend / resume are idempotent.
  EXPECT_TRUE(manager.ResumeStudy("paused", 1040.0));
  EXPECT_TRUE(manager.SuspendStudy("paused", 1041.0));
  EXPECT_TRUE(manager.SuspendStudy("paused", 1042.0));
  EXPECT_TRUE(manager.ResumeStudy("paused", 1043.0));
}

// ---------------------------------------------------------------------------
// Quotas.

TEST(StudyQuota, CapsConcurrentLeasesAndClampsBatches) {
  StudyManager manager(MakeStudySchedulerFactory(StudySpace()),
                       BaseOptions());
  ASSERT_TRUE(manager.CreateStudy("capped", RandomConfig(4), 0.0, 2));

  const Json first = manager.HandleMessage(RequestJob(1, "capped"), 0.0);
  ASSERT_EQ(ReplyType(first), "job");
  // A batch request against the last quota slot is clamped, not denied.
  const Json batch = manager.HandleMessage(RequestJobs(2, 5, "capped"), 0.0);
  ASSERT_EQ(ReplyType(batch), "jobs");
  EXPECT_EQ(batch.at("jobs").AsArray().size(), 1u);

  EXPECT_EQ(ReplyType(manager.HandleMessage(RequestJob(3, "capped"), 1.0)),
            "no_job");
  EXPECT_GE(manager.stats().quota_denials, 1u);

  // Completing a job frees its slot.
  ASSERT_EQ(ReplyType(manager.HandleMessage(
                Report(1, first.at("job_id").AsInt(), 0.5, "capped"), 2.0)),
            "ack");
  EXPECT_EQ(ReplyType(manager.HandleMessage(RequestJob(3, "capped"), 3.0)),
            "job");

  // So does an expired lease: the quota check ticks the study first, so a
  // worker is never starved by leases that are already dead.
  EXPECT_EQ(ReplyType(manager.HandleMessage(RequestJob(4, "capped"), 100.0)),
            "job");
}

// ---------------------------------------------------------------------------
// "*" fair allocation.

TEST(StudyFairAllocation, RoundRobinsAcrossReadyStudies) {
  StudyManagerOptions options = BaseOptions();
  options.default_config = Json();  // no default study in the mix
  StudyManager manager(MakeStudySchedulerFactory(StudySpace()), options);
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(manager.CreateStudy(name, RandomConfig(10), 0.0));
  }

  // One batched "*" request: one grant per ready study per pass, each
  // entry naming the study its report must route back to.
  const Json batch = manager.HandleMessage(RequestJobs(1, 3, "*"), 0.0);
  ASSERT_EQ(ReplyType(batch), "jobs");
  const JsonArray& entries = batch.at("jobs").AsArray();
  ASSERT_EQ(entries.size(), 3u);
  std::set<std::string> granted;
  for (const Json& entry : entries) {
    granted.insert(entry.at("study").AsString());
  }
  EXPECT_EQ(granted, (std::set<std::string>{"a", "b", "c"}));

  // Single "*" grants carry the study too, and reports route back.
  const Json single = manager.HandleMessage(RequestJob(2, "*"), 1.0);
  ASSERT_EQ(ReplyType(single), "job");
  const std::string& study = single.at("study").AsString();
  EXPECT_TRUE(granted.count(study) == 1);
  ASSERT_EQ(ReplyType(manager.HandleMessage(
                Report(2, single.at("job_id").AsInt(), 0.5, study), 2.0)),
            "ack");

  // Suspended studies are skipped by "*".
  ASSERT_TRUE(manager.SuspendStudy("a", 3.0));
  ASSERT_TRUE(manager.SuspendStudy("b", 3.0));
  for (int i = 0; i < 4; ++i) {
    const Json grant = manager.HandleMessage(RequestJob(5 + i, "*"), 4.0);
    ASSERT_EQ(ReplyType(grant), "job");
    EXPECT_EQ(grant.at("study").AsString(), "c");
  }

  // "*" is a grant-only address.
  EXPECT_EQ(ReplyType(manager.HandleMessage(Heartbeat(1, 0, "*"), 5.0)),
            "error");
}

// ---------------------------------------------------------------------------
// Sharding.

TEST(StudySharding, BehaviorIsShardCountInvariant) {
  // The same scripted session against 1 and 16 shards must produce the
  // same observable state — sharding is a lock-contention knob, not a
  // semantic one.
  std::vector<std::vector<StudyInfo>> results;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{16}}) {
    StudyManagerOptions options = BaseOptions();
    options.shards = shards;
    options.default_config = Json();
    StudyManager manager(MakeStudySchedulerFactory(StudySpace()), options);
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(manager.CreateStudy("study-" + std::to_string(i),
                                      RandomConfig(i), 0.0));
    }
    // Scoped traffic on every study, then expire half of it.
    for (int i = 0; i < 12; ++i) {
      const std::string name = "study-" + std::to_string(i);
      const Json grant =
          manager.HandleMessage(RequestJob(100 + i, name), 0.0);
      ASSERT_EQ(ReplyType(grant), "job");
      if (i % 2 == 0) {
        ASSERT_EQ(ReplyType(manager.HandleMessage(
                      Report(100 + i, grant.at("job_id").AsInt(), 0.5, name),
                      1.0)),
                  "ack");
      }
    }
    ASSERT_TRUE(manager.SuspendStudy("study-3", 2.0));
    ASSERT_TRUE(manager.DeleteStudy("study-7", 2.0));
    manager.Tick(100.0);  // expires every un-reported, un-suspended lease
    results.push_back(manager.ListStudies());
  }

  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_EQ(results[0][i].name, results[1][i].name);
    EXPECT_EQ(results[0][i].suspended, results[1][i].suspended);
    EXPECT_EQ(results[0][i].active_leases, results[1][i].active_leases);
    EXPECT_EQ(results[0][i].jobs_assigned, results[1][i].jobs_assigned);
    EXPECT_EQ(results[0][i].jobs_completed, results[1][i].jobs_completed);
  }
  // study-3 is frozen with its lease; every other unreported lease expired.
  const auto& infos = results[0];
  for (const StudyInfo& info : infos) {
    if (info.name == "study-3") {
      EXPECT_TRUE(info.suspended);
      EXPECT_EQ(info.active_leases, 1u);
    } else {
      EXPECT_EQ(info.active_leases, 0u);
    }
    EXPECT_NE(info.name, "study-7");  // deleted
  }
}

// ---------------------------------------------------------------------------
// Durability.

TEST(StudyDurability, RecoversEveryStudyAcrossRestart) {
  const std::string root = FreshDir("recover");
  StudyManagerOptions options = BaseOptions();
  options.durability_root = root;
  options.default_config = Json();

  std::int64_t open_job = 0;
  std::int64_t done_job = 0;
  {
    StudyManager manager(MakeStudySchedulerFactory(StudySpace()), options);
    ASSERT_TRUE(manager.CreateStudy("alpha", RandomConfig(2), 0.0));
    ASSERT_TRUE(manager.CreateStudy("beta", RandomConfig(3), 0.0, 4));
    const Json done = manager.HandleMessage(RequestJob(1, "alpha"), 0.0);
    done_job = done.at("job_id").AsInt();
    ASSERT_EQ(ReplyType(manager.HandleMessage(
                  Report(1, done_job, 0.5, "alpha"), 1.0)),
              "ack");
    const Json open = manager.HandleMessage(RequestJob(2, "alpha"), 2.0);
    open_job = open.at("job_id").AsInt();
    ASSERT_TRUE(manager.SuspendStudy("beta", 3.0));
    // No clean shutdown call: the manager is simply destroyed, like a
    // process kill between fsyncs (sync policy kEveryN still leaves the
    // journal readable; the writer flushes on close).
  }

  StudyManager recovered(MakeStudySchedulerFactory(StudySpace()), options);
  EXPECT_EQ(recovered.study_count(), 2u);
  EXPECT_EQ(recovered.stats().recovered, 2u);

  const auto infos = recovered.ListStudies();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "alpha");
  EXPECT_EQ(infos[0].jobs_assigned, 2u);
  EXPECT_EQ(infos[0].jobs_completed, 1u);
  EXPECT_EQ(infos[0].active_leases, 1u);
  EXPECT_EQ(infos[1].name, "beta");
  EXPECT_TRUE(infos[1].suspended);
  EXPECT_EQ(infos[1].max_leases, 4u);  // the manifest carries the quota

  // The recovered lease is live: a duplicate of the completed report is
  // stale, the open lease renews, and beta is still frozen.
  const Json stale = recovered.HandleMessage(
      Report(1, done_job, 0.5, "alpha"), 4.0);
  ASSERT_EQ(ReplyType(stale), "ack");
  EXPECT_TRUE(stale.Has("stale"));
  EXPECT_EQ(ReplyType(recovered.HandleMessage(Heartbeat(2, open_job, "alpha"),
                                              5.0)),
            "ack");
  EXPECT_EQ(ReplyType(recovered.HandleMessage(RequestJob(9, "beta"), 5.0)),
            "no_job");

  // Resume shifts beta's (empty) deadline set from the ORIGINAL suspension
  // time — the timestamp survived in state.json.
  ASSERT_TRUE(recovered.ResumeStudy("beta", 6.0));
  EXPECT_EQ(ReplyType(recovered.HandleMessage(RequestJob(9, "beta"), 6.0)),
            "job");
}

TEST(StudyDurability, TombstoneCompletesInterruptedDelete) {
  const std::string root = FreshDir("tombstone");
  StudyManagerOptions options = BaseOptions();
  options.durability_root = root;
  options.default_config = Json();
  {
    StudyManager manager(MakeStudySchedulerFactory(StudySpace()), options);
    ASSERT_TRUE(manager.CreateStudy("doomed", RandomConfig(1), 0.0));
    ASSERT_TRUE(manager.CreateStudy("kept", RandomConfig(2), 0.0));
  }
  // Simulate a crash between the tombstone write and the directory
  // removal: the tombstone is the durable commit point of the delete.
  {
    std::ofstream marker(std::filesystem::path(root) / "studies" / "doomed" /
                         "tombstone");
    marker << "{\"deleted_at\":1.0}";
  }
  // Manifest-less debris (a crash before create's commit point) is swept.
  std::filesystem::create_directories(std::filesystem::path(root) /
                                      "studies" / "halfborn");

  StudyManager recovered(MakeStudySchedulerFactory(StudySpace()), options);
  EXPECT_EQ(recovered.study_count(), 1u);
  EXPECT_EQ(recovered.stats().tombstones_completed, 1u);
  EXPECT_NE(recovered.FindServer("kept"), nullptr);
  EXPECT_EQ(recovered.FindServer("doomed"), nullptr);
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(root) /
                                       "studies" / "doomed"));
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(root) /
                                       "studies" / "halfborn"));
}

TEST(StudyDurability, RecoversAThousandStudies) {
  const std::string root = FreshDir("thousand");
  StudyManagerOptions options = BaseOptions();
  options.durability_root = root;
  options.default_config = Json();
  options.shards = 16;
  options.sync = SyncPolicy::kNone;  // throughput: this test is about scale
  {
    StudyManager manager(MakeStudySchedulerFactory(StudySpace()), options);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(manager.CreateStudy("study-" + std::to_string(i),
                                      RandomConfig(i), 0.0));
    }
    // Scatter some state so recovery replays real journals, not just
    // manifests.
    for (int i = 0; i < 1000; i += 97) {
      const std::string name = "study-" + std::to_string(i);
      const Json grant = manager.HandleMessage(RequestJob(i, name), 1.0);
      ASSERT_EQ(ReplyType(grant), "job");
    }
    EXPECT_EQ(manager.study_count(), 1000u);
  }
  StudyManager recovered(MakeStudySchedulerFactory(StudySpace()), options);
  EXPECT_EQ(recovered.study_count(), 1000u);
  EXPECT_EQ(recovered.stats().recovered, 1000u);
  // Spot-check a replayed lease survived.
  EXPECT_EQ(ReplyType(recovered.HandleMessage(Heartbeat(97, 1, "study-97"),
                                              2.0)),
            "ack");
}

// ---------------------------------------------------------------------------
// Worker integration: the held report keeps its routing key.

class FlatEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    return config.GetDouble("x") / (1.0 + resource);
  }
  double Duration(const Configuration&, Resource from, Resource to) override {
    return (to - from) * 0.01;
  }
};

/// ServerConnection over a StudyManager with an outage switch — the
/// manager-level twin of DirectConnection.
class ManagerConnection final : public ServerConnection {
 public:
  explicit ManagerConnection(StudyManager* manager = nullptr)
      : manager_(manager) {}
  void Attach(StudyManager* manager) { manager_ = manager; }
  void Detach() { manager_ = nullptr; }
  std::optional<Json> Send(const Json& message, double now) override {
    if (manager_ == nullptr) return std::nullopt;
    return manager_->HandleMessage(message, now);
  }

 private:
  StudyManager* manager_;
};

TEST(StudyWorker, HeldReportKeepsItsStudyAcrossServerRestart) {
  const std::string root = FreshDir("held_report");
  StudyManagerOptions options = BaseOptions();
  options.durability_root = root;
  // No default study: a report that lost its routing key would come back
  // as an unknown-study error instead of landing in "alpha".
  options.default_config = Json();

  FlatEnv environment;
  SimulatedWorker worker(1, environment, /*heartbeat_interval=*/5.0);
  worker.SetStudy("alpha");
  ManagerConnection connection;

  {
    StudyManager manager(MakeStudySchedulerFactory(StudySpace()), options);
    ASSERT_TRUE(manager.CreateStudy("alpha", RandomConfig(3), 0.0));
    connection.Attach(&manager);
    worker.OnTick(connection, 0.0);  // leases a job, starts training
    ASSERT_TRUE(worker.IsTraining());
    // The server dies while the job is still running...
    connection.Detach();
    // ...and the job finishes during the outage: the report is held.
    worker.OnTick(connection, 10.0);
    EXPECT_TRUE(worker.has_pending_report());
    EXPECT_EQ(worker.jobs_completed(), 0u);
  }

  // The server restarts from disk. The retried report must still carry
  // study=alpha — the payload was built with its routing key up front.
  StudyManager restarted(MakeStudySchedulerFactory(StudySpace()), options);
  ASSERT_EQ(restarted.study_count(), 1u);
  connection.Attach(&restarted);
  worker.OnTick(connection, worker.next_action_time());
  EXPECT_FALSE(worker.has_pending_report());
  EXPECT_EQ(worker.jobs_completed(), 1u);

  const auto infos = restarted.ListStudies();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "alpha");
  EXPECT_EQ(infos[0].jobs_completed, 1u);
  EXPECT_EQ(infos[0].active_leases, 0u);
}

TEST(StudyWorker, ScopedWorkerDrivesAStudyEndToEnd) {
  StudyManagerOptions options = BaseOptions();
  options.default_config = Json();
  StudyManager manager(MakeStudySchedulerFactory(StudySpace()), options);
  Json config = RandomConfig(11);
  config.Set("max_trials", Json(std::int64_t{8}));
  ASSERT_TRUE(manager.CreateStudy("solo", config, 0.0));

  FlatEnv environment;
  SimulatedWorker worker(1, environment, /*heartbeat_interval=*/5.0);
  worker.SetStudy("solo");
  ManagerConnection connection(&manager);
  for (double now = 0; now < 50; now += 0.25) {
    if (now >= worker.next_action_time()) worker.OnTick(connection, now);
  }
  EXPECT_EQ(worker.jobs_completed(), 8u);
  const auto infos = manager.ListStudies();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].jobs_completed, 8u);
  EXPECT_EQ(infos[0].active_leases, 0u);
}

}  // namespace
}  // namespace hypertune
