// Tabular-benchmark coverage: HTTB0001 pack/unpack round-trips, corruption
// detection, the mmap loader, fidelity-ladder rounding, and resumable
// duration math (see src/surrogate/table.h for the format).
#include "surrogate/table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <string>

#include "common/check.h"

namespace hypertune {
namespace {

TableData SmallTable() {
  TableData data;
  data.rows = 3;
  data.resumable = true;
  data.fidelities = {1.0, 3.0, 9.0};
  for (std::uint32_t row = 0; row < data.rows; ++row) {
    for (std::size_t i = 0; i < data.fidelities.size(); ++i) {
      data.losses.push_back(1.0 / (1.0 + static_cast<double>(row + i)));
      data.cum_times.push_back(static_cast<double>(row + 1) *
                               data.fidelities[i]);
    }
  }
  return data;
}

Configuration RowConfig(std::int64_t row) {
  Configuration config;
  config.Set("row", row);
  return config;
}

TEST(TablePack, RoundTripPreservesEverything) {
  const TableData original = SmallTable();
  const std::string bytes = PackTable(original);
  const TableData back = UnpackTable(bytes);
  EXPECT_EQ(back.rows, original.rows);
  EXPECT_EQ(back.resumable, original.resumable);
  EXPECT_EQ(back.fidelities, original.fidelities);
  EXPECT_EQ(back.losses, original.losses);
  EXPECT_EQ(back.cum_times, original.cum_times);
}

TEST(TablePack, ResumableFlagRoundTrips) {
  TableData data = SmallTable();
  data.resumable = false;
  EXPECT_FALSE(UnpackTable(PackTable(data)).resumable);
}

TEST(TablePack, DetectsPayloadCorruption) {
  std::string bytes = PackTable(SmallTable());
  bytes[bytes.size() - 3] ^= 0x01;  // flip one payload bit
  EXPECT_THROW(UnpackTable(bytes), CheckError);
}

TEST(TablePack, DetectsTruncationAndBadMagic) {
  std::string bytes = PackTable(SmallTable());
  EXPECT_THROW(UnpackTable(bytes.substr(0, bytes.size() - 8)), CheckError);
  EXPECT_THROW(UnpackTable(bytes.substr(0, 10)), CheckError);
  std::string wrong = bytes;
  wrong[0] = 'X';
  EXPECT_THROW(UnpackTable(wrong), CheckError);
}

TEST(TablePack, RejectsMalformedShapes) {
  TableData data = SmallTable();
  data.losses.pop_back();
  EXPECT_THROW(PackTable(data), CheckError);

  data = SmallTable();
  data.fidelities = {3.0, 1.0, 9.0};  // not ascending
  EXPECT_THROW(PackTable(data), CheckError);

  data = SmallTable();
  data.cum_times[1] = data.cum_times[0];  // not strictly ascending in-row
  EXPECT_THROW(PackTable(data), CheckError);
}

TEST(TabularBenchmark, LookupMatchesTable) {
  const TableData data = SmallTable();
  TabularBenchmark bench{TableData(data)};
  EXPECT_EQ(bench.rows(), 3u);
  EXPECT_EQ(bench.num_fidelities(), 3u);
  EXPECT_DOUBLE_EQ(bench.max_resource(), 9.0);
  for (std::int64_t row = 0; row < 3; ++row) {
    for (std::size_t i = 0; i < 3; ++i) {
      const double fid = data.fidelities[i];
      EXPECT_DOUBLE_EQ(bench.Loss(RowConfig(row), fid),
                       data.losses[static_cast<std::size_t>(row) * 3 + i]);
    }
  }
}

TEST(TabularBenchmark, FidelityRoundsUpAndClamps) {
  TabularBenchmark bench{SmallTable()};
  // Between rungs 1 and 3 rounds up to the rung-3 cell.
  EXPECT_DOUBLE_EQ(bench.Loss(RowConfig(0), 2.0), bench.LossAt(0, 1));
  // Above the top of the ladder clamps to the last cell.
  EXPECT_DOUBLE_EQ(bench.Loss(RowConfig(0), 100.0), bench.LossAt(0, 2));
  // At or below the bottom hits the first cell.
  EXPECT_DOUBLE_EQ(bench.Loss(RowConfig(0), 0.5), bench.LossAt(0, 0));
}

TEST(TabularBenchmark, ResumableDurationIsIncremental) {
  TabularBenchmark bench{SmallTable()};
  // Row 1: cum_times = {2, 6, 18}. From scratch to 9 costs 18; resuming
  // from 3 costs the difference.
  EXPECT_DOUBLE_EQ(bench.Duration(RowConfig(1), 0, 9.0), 18.0);
  EXPECT_DOUBLE_EQ(bench.Duration(RowConfig(1), 3.0, 9.0), 12.0);
}

TEST(TabularBenchmark, NonResumableAlwaysPaysFromScratch) {
  TableData data = SmallTable();
  data.resumable = false;
  TabularBenchmark bench{std::move(data)};
  EXPECT_DOUBLE_EQ(bench.Duration(RowConfig(1), 3.0, 9.0), 18.0);
}

TEST(TabularBenchmark, RejectsOutOfRangeRow) {
  TabularBenchmark bench{SmallTable()};
  EXPECT_THROW(bench.Loss(RowConfig(7), 1.0), CheckError);
}

TEST(TabularBenchmark, SearchSpaceIsOneRowParameter) {
  TabularBenchmark bench{SmallTable()};
  ASSERT_EQ(bench.space().NumParams(), 1u);
  EXPECT_EQ(bench.space().name(0), "row");
}

TEST(TabularBenchmark, FromFileServesIdenticalLookups) {
  const TableData data = SmallTable();
  const std::string path = testing::TempDir() + "/httb_roundtrip.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const std::string bytes = PackTable(data);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto bench = TabularBenchmark::FromFile(path);
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->rows(), data.rows);
  EXPECT_TRUE(bench->resumable());
  for (std::int64_t row = 0; row < 3; ++row) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(
          bench->Loss(RowConfig(row), data.fidelities[i]),
          data.losses[static_cast<std::size_t>(row) * 3 + i]);
      EXPECT_DOUBLE_EQ(bench->CumTimeAt(static_cast<std::uint32_t>(row), i),
                       data.cum_times[static_cast<std::size_t>(row) * 3 + i]);
    }
  }
}

TEST(TabularBenchmark, FromFileRejectsCorruptFile) {
  std::string bytes = PackTable(SmallTable());
  bytes[bytes.size() - 1] ^= 0x10;
  const std::string path = testing::TempDir() + "/httb_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(TabularBenchmark::FromFile(path), CheckError);
}

std::string WriteBytes(const std::string& name, const std::string& bytes) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(TableVerify, CleanFilePassesAndReportsShape) {
  const std::string bytes = PackTable(SmallTable());
  const auto stats = VerifyTableFile(WriteBytes("httb_verify_ok.bin", bytes));
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_EQ(stats.num_fidelities, 3u);
  EXPECT_TRUE(stats.resumable);
  EXPECT_EQ(stats.file_bytes, bytes.size());
}

TEST(TableVerify, DetectsSingleBitFlipAnywhereInPayload) {
  const std::string clean = PackTable(SmallTable());
  for (const std::size_t offset :
       {std::size_t{24}, clean.size() / 2, clean.size() - 1}) {
    std::string bytes = clean;
    bytes[offset] ^= 0x01;
    EXPECT_THROW(VerifyTableFile(WriteBytes("httb_verify_flip.bin", bytes)),
                 CheckError)
        << "flip at offset " << offset;
  }
}

TEST(TableVerify, DetectsNonFiniteLossBehindValidCrc) {
  // A NaN loss survives packing and the CRC (it was packed, not corrupted),
  // and the mmap loader accepts it; only the verifier's full row walk
  // rejects it.
  TableData data = SmallTable();
  data.losses[4] = std::numeric_limits<double>::quiet_NaN();
  const std::string path =
      WriteBytes("httb_verify_nan.bin", PackTable(data));
  EXPECT_NO_THROW(TabularBenchmark::FromFile(path));
  EXPECT_THROW(VerifyTableFile(path), CheckError);
}

TEST(TableVerify, RejectsMissingAndTruncatedFiles) {
  EXPECT_THROW(VerifyTableFile(testing::TempDir() + "/httb_no_such_file.bin"),
               CheckError);
  const std::string bytes = PackTable(SmallTable());
  EXPECT_THROW(VerifyTableFile(WriteBytes(
                   "httb_verify_trunc.bin", bytes.substr(0, bytes.size() - 4))),
               CheckError);
}

}  // namespace
}  // namespace hypertune
