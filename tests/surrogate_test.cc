#include "surrogate/benchmark.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "surrogate/benchmarks.h"

namespace hypertune {
namespace {

BenchmarkSpec SimpleSpec() {
  BenchmarkSpec spec;
  spec.name = "test";
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0))
      .Add("y", Domain::Continuous(0.0, 1.0));
  spec.space = std::move(space);
  spec.max_resource = 100;
  spec.random_guess_loss = 1.0;
  spec.best_final_loss = 0.1;
  spec.landscape_scale = 0.5;
  spec.divergence_fraction = 0.0;
  spec.divergence_param = "";
  spec.eval_noise_std = 0.0;
  // Calibrated like the paper benchmarks: early losses are informative but
  // imperfect rank predictors.
  spec.alpha_min = 0.4;
  spec.alpha_max = 0.9;
  spec.gap_frac_min = 0.015;
  spec.gap_frac_max = 0.06;
  return spec;
}

TEST(Surrogate, LossMonotonicallyImprovesWithResource) {
  SyntheticBenchmark bench(SimpleSpec(), 1);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto config = bench.space().Sample(rng);
    double prev = bench.TrueLoss(config, 1);
    for (double r = 10; r <= 100; r += 10) {
      const double loss = bench.TrueLoss(config, r);
      EXPECT_LE(loss, prev + 1e-12);
      prev = loss;
    }
  }
}

TEST(Surrogate, LossCappedAtRandomGuess) {
  SyntheticBenchmark bench(SimpleSpec(), 1);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto config = bench.space().Sample(rng);
    EXPECT_LE(bench.TrueLoss(config, 0.01), 1.0);
    EXPECT_GE(bench.FinalLoss(config), 0.09);
  }
}

TEST(Surrogate, FinalLossBoundedByLandscape) {
  SyntheticBenchmark bench(SimpleSpec(), 1);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto config = bench.space().Sample(rng);
    const double final_loss = bench.FinalLoss(config);
    EXPECT_GE(final_loss, 0.1 * 0.9);
    EXPECT_LE(final_loss, 1.0);
  }
}

TEST(Surrogate, LandscapeDeterministicAcrossInstances) {
  SyntheticBenchmark a(SimpleSpec(), /*trial_seed=*/1);
  SyntheticBenchmark b(SimpleSpec(), /*trial_seed=*/999);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto config = a.space().Sample(rng);
    // Ground truth is independent of the trial seed.
    EXPECT_DOUBLE_EQ(a.FinalLoss(config), b.FinalLoss(config));
    EXPECT_DOUBLE_EQ(a.TrueLoss(config, 50), b.TrueLoss(config, 50));
  }
}

TEST(Surrogate, EvalNoiseVariesByTrialSeedButIsReproducible) {
  auto spec = SimpleSpec();
  spec.eval_noise_std = 0.01;
  SyntheticBenchmark a(spec, 1), a2(spec, 1), b(spec, 2);
  Rng rng(5);
  int differ = 0;
  for (int i = 0; i < 20; ++i) {
    const auto config = a.space().Sample(rng);
    EXPECT_DOUBLE_EQ(a.Loss(config, 50), a2.Loss(config, 50));
    differ += a.Loss(config, 50) != b.Loss(config, 50);
  }
  EXPECT_GT(differ, 15);
}

TEST(Surrogate, LowResourceLossPredictsFinalRank) {
  // Correlation between partial-training loss and final loss is clearly
  // positive — the premise of successive halving — and strengthens with
  // more resource.
  SyntheticBenchmark bench(SimpleSpec(), 1);
  Rng rng(6);
  std::vector<Configuration> configs;
  std::vector<double> final_losses;
  for (int i = 0; i < 300; ++i) {
    configs.push_back(bench.space().Sample(rng));
    final_losses.push_back(bench.FinalLoss(configs.back()));
  }
  const auto final_rank = ArgsortAscending(final_losses);
  auto hits_at = [&](double resource) {
    std::vector<double> early;
    for (const auto& config : configs) {
      early.push_back(bench.TrueLoss(config, resource));
    }
    const auto early_rank = ArgsortAscending(early);
    std::set<std::size_t> early_top(early_rank.begin(),
                                    early_rank.begin() + 90);
    int hits = 0;
    for (int i = 0; i < 30; ++i) hits += early_top.contains(final_rank[i]);
    return hits;  // chance level: 90/300 * 30 = 9
  };
  EXPECT_GT(hits_at(100.0 / 8), 15);
  EXPECT_GE(hits_at(100.0 / 4), hits_at(100.0 / 64));
  EXPECT_GT(hits_at(100.0 / 2), 22);
}

TEST(Surrogate, DivergenceRegionRespectsThreshold) {
  auto spec = SimpleSpec();
  spec.divergence_param = "x";
  spec.divergence_unit_threshold = 0.9;
  spec.divergence_loss = 1.0;
  SyntheticBenchmark bench(spec, 1);
  Configuration high, low;
  high.Set("x", ParamValue{0.95});
  high.Set("y", ParamValue{0.5});
  low.Set("x", ParamValue{0.5});
  low.Set("y", ParamValue{0.5});
  EXPECT_TRUE(bench.IsDiverged(high));
  EXPECT_FALSE(bench.IsDiverged(low));
  // Diverged configs show their bad loss even at tiny resource.
  EXPECT_DOUBLE_EQ(bench.TrueLoss(high, 1), bench.FinalLoss(high));
}

TEST(Surrogate, HeavyTailProducesOrdersOfMagnitudeOutliers) {
  auto bench = benchmarks::PtbLstm(1);
  Rng rng(7);
  double worst = 0;
  int diverged = 0;
  for (int i = 0; i < 500; ++i) {
    const auto config = bench->space().Sample(rng);
    if (bench->IsDiverged(config)) {
      ++diverged;
      worst = std::max(worst, bench->FinalLoss(config));
    }
  }
  EXPECT_GT(diverged, 30);      // ~10%+ of the space diverges
  EXPECT_GT(worst, 10000.0);    // orders of magnitude beyond normal ~76-136
}

TEST(Surrogate, DurationLinearAndResumable) {
  SyntheticBenchmark bench(SimpleSpec(), 1);
  Rng rng(8);
  const auto config = bench.space().Sample(rng);
  EXPECT_DOUBLE_EQ(bench.Duration(config, 0, 100),
                   bench.Duration(config, 0, 40) +
                       bench.Duration(config, 40, 100));
}

TEST(Surrogate, NonResumablePaysFullCost) {
  auto spec = SimpleSpec();
  spec.resumable = false;
  spec.time_exponent = 1.7;
  SyntheticBenchmark bench(spec, 1);
  Rng rng(9);
  const auto config = bench.space().Sample(rng);
  // From a checkpoint or not, cost is identical (full retrain).
  EXPECT_DOUBLE_EQ(bench.Duration(config, 50, 100),
                   bench.Duration(config, 0, 100));
  // Superlinear: 2x data costs > 2x time.
  EXPECT_GT(bench.Duration(config, 0, 100),
            2.0 * bench.Duration(config, 0, 50));
}

TEST(Surrogate, TestMetricTracksValidationLoss) {
  auto spec = SimpleSpec();
  spec.test_noise_std = 0.01;
  SyntheticBenchmark bench(spec, 1);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const auto config = bench.space().Sample(rng);
    EXPECT_NEAR(bench.TestMetric(config, 100), bench.TrueLoss(config, 100),
                0.05);
  }
}

TEST(Surrogate, SpecValidation) {
  auto spec = SimpleSpec();
  spec.best_final_loss = 2.0;  // above random guess
  EXPECT_THROW(SyntheticBenchmark(spec, 1), CheckError);
  spec = SimpleSpec();
  spec.max_resource = 0;
  EXPECT_THROW(SyntheticBenchmark(spec, 1), CheckError);
  spec = SimpleSpec();
  spec.time_exponent = 0.5;
  EXPECT_THROW(SyntheticBenchmark(spec, 1), CheckError);
}

TEST(PaperBenchmarks, AllBuildAndSample) {
  for (const auto& name : benchmarks::AllNames()) {
    auto bench = benchmarks::ByName(name, 1);
    Rng rng(11);
    const auto config = bench->space().Sample(rng);
    const double loss = bench->Loss(config, bench->R());
    EXPECT_TRUE(std::isfinite(loss)) << name;
    EXPECT_GT(bench->Duration(config, 0, bench->R()), 0) << name;
  }
  EXPECT_THROW(benchmarks::ByName("nope", 1), CheckError);
}

TEST(PaperBenchmarks, CifarArchTrainingTimeSpread) {
  // Section 4.2: mean time(R) ~30 minutes with std ~27 — high variance in
  // training times across configurations.
  auto bench = benchmarks::CifarArch(1);
  Rng rng(12);
  std::vector<double> times;
  for (int i = 0; i < 400; ++i) {
    const auto config = bench->space().Sample(rng);
    times.push_back(bench->Duration(config, 0, bench->R()));
  }
  const double mean = Mean(times);
  EXPECT_GT(mean, 15.0);
  EXPECT_LT(mean, 50.0);
  EXPECT_GT(Stddev(times) / mean, 0.5);  // high relative spread
}

TEST(PaperBenchmarks, CifarConvnetTimeNearlyConstant) {
  auto bench = benchmarks::CifarConvnet(1);
  Rng rng(13);
  std::vector<double> times;
  for (int i = 0; i < 200; ++i) {
    const auto config = bench->space().Sample(rng);
    times.push_back(bench->Duration(config, 0, bench->R()));
  }
  EXPECT_LT(Stddev(times) / Mean(times), 0.15);  // "relative simplicity"
}

TEST(PaperBenchmarks, PtbMeanTimeOfRNearOne) {
  auto bench = benchmarks::PtbLstm(1);
  // Figure 5's x-axis unit: time(R) ~ 1.0 by calibration.
  EXPECT_NEAR(bench->MeanTimeOfR(500), 1.0, 0.25);
}

TEST(PaperBenchmarks, GoodConfigurationsExist) {
  // Each benchmark's best 1% of random draws should approach the target
  // floor — otherwise no tuner could reproduce the paper's curves.
  struct Target { const char* name; double good; };
  const std::vector<Target> targets{
      {"cifar_convnet", 0.23}, {"cifar_arch", 0.27},
      {"svhn_cnn", 0.10},      {"awd_lstm", 75.0}};
  for (const auto& target : targets) {
    auto bench = benchmarks::ByName(target.name, 1);
    Rng rng(14);
    double best = 1e18;
    for (int i = 0; i < 2000; ++i) {
      best = std::min(best, bench->FinalLoss(bench->space().Sample(rng)));
    }
    EXPECT_LT(best, target.good) << target.name;
  }
}

TEST(PaperBenchmarks, UnitTimeDurationEqualsResource) {
  auto bench = benchmarks::UnitTime(1);
  Rng rng(15);
  const auto config = bench->space().Sample(rng);
  EXPECT_DOUBLE_EQ(bench->Duration(config, 0, 256), 256);
  EXPECT_DOUBLE_EQ(bench->Duration(config, 64, 256), 192);
}

TEST(ConfigUniform, DeterministicAndSaltSensitive) {
  Configuration config;
  config.Set("a", ParamValue{0.5});
  EXPECT_DOUBLE_EQ(ConfigUniform(config, 1), ConfigUniform(config, 1));
  EXPECT_NE(ConfigUniform(config, 1), ConfigUniform(config, 2));
  const double u = ConfigUniform(config, 1);
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

}  // namespace
}  // namespace hypertune
