// Sweep engine coverage (src/sweep): statistics kernels against
// hand-computed fixtures, grid enumeration, and the tentpole property —
// reports byte-identical across thread counts and event-queue engines.
#include "sweep/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "sweep/report.h"
#include "sweep/stats.h"
#include "surrogate/table.h"

namespace hypertune {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------- stats ---

TEST(SweepStats, RankRowsHandFixtures) {
  // Row 0: distinct values -> ranks 2, 1, 3.
  // Row 1: tie for best -> fractional ranks 1.5, 1.5, 3.
  // Row 2: NaN ranks worst.
  const auto ranks = RankRows({{0.2, 0.1, 0.3},
                               {0.5, 0.5, 0.9},
                               {kNaN, 0.4, 0.6}});
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_EQ(ranks[0], (std::vector<double>{2, 1, 3}));
  EXPECT_EQ(ranks[1], (std::vector<double>{1.5, 1.5, 3}));
  EXPECT_EQ(ranks[2], (std::vector<double>{3, 1, 2}));
}

TEST(SweepStats, NormalizedRegretHandFixtures) {
  // best = 0.1, reference (median) = 0.5: gap / 0.4.
  EXPECT_DOUBLE_EQ(NormalizedRegret(0.1, 0.1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedRegret(0.5, 0.1, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedRegret(0.3, 0.1, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(NormalizedRegret(0.9, 0.1, 0.5), 2.0);
  // Degenerate normalizer (reference <= best): raw gap.
  EXPECT_DOUBLE_EQ(NormalizedRegret(0.4, 0.2, 0.2), 0.2);
  EXPECT_TRUE(std::isnan(NormalizedRegret(kNaN, 0.1, 0.5)));
}

TEST(SweepStats, BootstrapDegenerateFixtures) {
  // Empty sample: all zeros.
  const auto empty = BootstrapMeanCi({}, 100, 0.95, 1);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 0.0);
  EXPECT_EQ(empty.n, 0u);

  // Single observation: the interval collapses onto it.
  const std::vector<double> single = {3.25};
  const auto one = BootstrapMeanCi(single, 100, 0.95, 1);
  EXPECT_DOUBLE_EQ(one.mean, 3.25);
  EXPECT_DOUBLE_EQ(one.lo, 3.25);
  EXPECT_DOUBLE_EQ(one.hi, 3.25);

  // Constant sample: every resample mean is the constant.
  const std::vector<double> twos = {2.0, 2.0, 2.0, 2.0};
  const auto constant = BootstrapMeanCi(twos, 200, 0.95, 7);
  EXPECT_DOUBLE_EQ(constant.mean, 2.0);
  EXPECT_DOUBLE_EQ(constant.lo, 2.0);
  EXPECT_DOUBLE_EQ(constant.hi, 2.0);
}

TEST(SweepStats, BootstrapBracketsTheMeanDeterministically) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto a = BootstrapMeanCi(xs, 1000, 0.95, 42);
  EXPECT_DOUBLE_EQ(a.mean, 4.5);  // the sample mean, not a resample mean
  EXPECT_LE(a.lo, a.mean);
  EXPECT_GE(a.hi, a.mean);
  EXPECT_GE(a.lo, 1.0);
  EXPECT_LE(a.hi, 8.0);
  EXPECT_LT(a.lo, a.hi);  // non-degenerate sample -> non-degenerate interval

  // Same seed reproduces the interval bit-for-bit; the seed matters.
  const auto b = BootstrapMeanCi(xs, 1000, 0.95, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  const auto c = BootstrapMeanCi(xs, 1000, 0.95, 43);
  EXPECT_TRUE(c.lo != a.lo || c.hi != a.hi);

  // Wider confidence -> interval at least as wide.
  const auto wide = BootstrapMeanCi(xs, 1000, 0.99, 42);
  EXPECT_LE(wide.lo, a.lo);
  EXPECT_GE(wide.hi, a.hi);
}

// ----------------------------------------------------------------- grid ---

std::unique_ptr<TabularBenchmark> TinyTable(double scale) {
  TableData data;
  data.rows = 32;
  data.resumable = true;
  data.fidelities = {1.0, 4.0, 16.0};
  for (std::uint32_t row = 0; row < data.rows; ++row) {
    for (std::size_t i = 0; i < data.fidelities.size(); ++i) {
      // Losses fall with fidelity; the row's tail digits keep rows distinct.
      data.losses.push_back(1.0 / (1.0 + static_cast<double>(i)) +
                            0.001 * static_cast<double>((row * 7) % 13));
      data.cum_times.push_back(scale * static_cast<double>(row + 1) *
                               data.fidelities[i]);
    }
  }
  return std::make_unique<TabularBenchmark>(std::move(data));
}

SweepSpec TinySpec(TabularBenchmark* a, TabularBenchmark* b) {
  SweepSpec spec;
  spec.benchmarks = {{"alpha", a}, {"beta", b}};
  spec.schedulers = {"asha", "random"};
  spec.seeds = {1, 2, 3};
  spec.fleets = {2, 8};
  spec.params.n = 16;
  spec.params.r_divisor = 16;
  spec.full_train_budget = 4;
  return spec;
}

TEST(SweepSpec, CellEnumerationRoundTrips) {
  auto table = TinyTable(1.0);
  const SweepSpec spec = TinySpec(table.get(), table.get());
  ASSERT_EQ(CellCount(spec), 2u * 2u * 3u * 2u);
  std::size_t expected = 0;
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t s = 0; s < 2; ++s) {
      for (std::size_t d = 0; d < 3; ++d) {
        for (std::size_t f = 0; f < 2; ++f, ++expected) {
          const SweepCell cell = CellAt(spec, expected);
          EXPECT_EQ(cell.index, expected);
          EXPECT_EQ(cell.benchmark, b);
          EXPECT_EQ(cell.scheduler, s);
          EXPECT_EQ(cell.seed_index, d);
          EXPECT_EQ(cell.fleet_index, f);
        }
      }
    }
  }
  EXPECT_THROW(CellAt(spec, CellCount(spec)), CheckError);
}

TEST(SweepSpec, ValidationRejectsUnboundedAndMalformedSpecs) {
  auto table = TinyTable(1.0);
  SweepSpec spec = TinySpec(table.get(), table.get());
  spec.full_train_budget = 0;  // no stop criterion left
  EXPECT_THROW(ValidateSpec(spec), CheckError);
  spec.max_jobs = 10;
  EXPECT_NO_THROW(ValidateSpec(spec));

  spec = TinySpec(table.get(), nullptr);
  EXPECT_THROW(ValidateSpec(spec), CheckError);
  spec = TinySpec(table.get(), table.get());
  spec.fleets = {4, 0};
  EXPECT_THROW(ValidateSpec(spec), CheckError);
  spec.fleets = {};
  EXPECT_THROW(ValidateSpec(spec), CheckError);
}

TEST(SweepEngine, NormsMatchHandComputation) {
  TableData data;
  data.rows = 4;
  data.resumable = true;
  data.fidelities = {1.0, 2.0};
  data.losses = {0.9, 0.4,   // row 0
                 0.8, 0.2,   // row 1
                 0.7, 0.6,   // row 2
                 0.6, 0.3};  // row 3
  data.cum_times = {1, 2, 1, 4, 1, 6, 1, 8};
  const TabularBenchmark table(std::move(data));
  const BenchmarkNorms norms = ComputeNorms(table);
  EXPECT_DOUBLE_EQ(norms.best_final, 0.2);
  EXPECT_DOUBLE_EQ(norms.median_final, 0.35);  // median of {0.4,0.2,0.6,0.3}
  EXPECT_DOUBLE_EQ(norms.random_guess, 0.9);
  EXPECT_DOUBLE_EQ(norms.mean_full_time, 5.0);  // mean of {2,4,6,8}
}

// ------------------------------------------------------------- tentpole ---

TEST(SweepEngine, ReportByteIdenticalAcrossThreadCounts) {
  auto alpha = TinyTable(1.0);
  auto beta = TinyTable(40.0);  // very different time scale
  const SweepSpec spec = TinySpec(alpha.get(), beta.get());
  std::string reference;
  for (const int threads : {1, 4, 16}) {
    const auto results = RunSweep(spec, {.threads = threads});
    const std::string dump = BuildSweepReport(spec, results).Dump(2);
    if (reference.empty()) {
      reference = dump;
    } else {
      EXPECT_EQ(dump, reference) << "report diverged at " << threads
                                 << " threads";
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(SweepEngine, ResultsIdenticalAcrossEventQueueEngines) {
  auto table = TinyTable(1.0);
  SweepSpec spec = TinySpec(table.get(), table.get());
  spec.event_queue = SimEngine::kCalendar;
  const auto calendar = RunSweep(spec, {.threads = 4});
  spec.event_queue = SimEngine::kBinaryHeap;
  const auto heap = RunSweep(spec, {.threads = 4});
  EXPECT_EQ(BuildSweepReport(spec, calendar).Dump(),
            BuildSweepReport(spec, heap).Dump());
}

TEST(SweepEngine, CellFailuresPropagateToCaller) {
  auto table = TinyTable(1.0);
  SweepSpec spec = TinySpec(table.get(), table.get());
  spec.schedulers = {"asha", "no_such_tuner"};
  EXPECT_THROW(RunSweep(spec, {.threads = 4}), CheckError);
  EXPECT_THROW(RunSweep(spec, {.threads = 1}), CheckError);
}

TEST(SweepEngine, ReportRowsCarryCellIdentity) {
  auto table = TinyTable(1.0);
  const SweepSpec spec = TinySpec(table.get(), table.get());
  SweepThroughput throughput;
  const auto results = RunSweep(spec, {.threads = 2}, &throughput);
  ASSERT_EQ(results.size(), CellCount(spec));
  EXPECT_EQ(throughput.cells, results.size());
  std::uint64_t jobs = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepCell cell = CellAt(spec, i);
    EXPECT_EQ(results[i].benchmark, cell.benchmark);
    EXPECT_EQ(results[i].scheduler, cell.scheduler);
    EXPECT_EQ(results[i].seed, spec.seeds[cell.seed_index]);
    EXPECT_EQ(results[i].workers, spec.fleets[cell.fleet_index]);
    EXPECT_GT(results[i].jobs_completed, 0u);
    EXPECT_GE(results[i].utilization, 0.0);
    EXPECT_LE(results[i].utilization, 1.0);
    jobs += results[i].jobs_completed;
  }
  EXPECT_EQ(throughput.jobs, jobs);

  const Json report = BuildSweepReport(spec, results);
  EXPECT_EQ(report.at("format").AsString(), "htsweep-report-v1");
  EXPECT_EQ(report.at("cells").size(), results.size());
  // One aggregate row per (benchmark, fleet, scheduler).
  EXPECT_EQ(report.at("aggregates").size(), 2u * 2u * 2u);
  const std::string text = SweepReportText(report);
  EXPECT_NE(text.find("### alpha @ 2 workers"), std::string::npos);
  EXPECT_NE(text.find("### beta @ 8 workers"), std::string::npos);
}

}  // namespace
}  // namespace hypertune
