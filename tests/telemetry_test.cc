// The observability subsystem: metric semantics, trace export formats,
// deterministic traces under the simulator, and thread-safety of the
// registry/tracer under the thread-pool executor (the ASan/UBSan CI job
// exercises this binary specifically).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/asha.h"
#include "core/random_search.h"
#include "runtime/executor.h"
#include "searchspace/space.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "telemetry/telemetry.h"

namespace hypertune {
namespace {

TEST(Metrics, CounterSemantics) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("a");
  counter.Increment();
  counter.Increment(4);
  EXPECT_EQ(counter.value(), 5);
  // Same name -> same instrument.
  EXPECT_EQ(&registry.counter("a"), &counter);
  EXPECT_NE(&registry.counter("b"), &counter);
}

TEST(Metrics, GaugeSemantics) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("depth");
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
  gauge.Add(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.25);
}

TEST(Metrics, HistogramBucketsAndMoments) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("lat", {1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(1.0);    // bucket 0 (boundary counts down)
  histogram.Observe(7.0);    // bucket 1
  histogram.Observe(1000.0); // overflow
  EXPECT_EQ(histogram.count(), 4);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1008.5);
  EXPECT_EQ(histogram.bucket(0), 2);
  EXPECT_EQ(histogram.bucket(1), 1);
  EXPECT_EQ(histogram.bucket(2), 0);
  EXPECT_EQ(histogram.bucket(3), 1);  // overflow bucket
}

TEST(Metrics, ExponentialBuckets) {
  const auto bounds = ExponentialBuckets(0.001, 10, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.001);
  EXPECT_DOUBLE_EQ(bounds[3], 1.0);
}

TEST(Metrics, SnapshotShape) {
  MetricsRegistry registry;
  registry.counter("z").Increment(2);
  registry.counter("a").Increment(1);
  registry.gauge("g").Set(0.5);
  registry.histogram("h", {1.0}).Observe(0.5);
  const Json snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.at("counters").at("a").AsInt(), 1);
  EXPECT_EQ(snapshot.at("counters").at("z").AsInt(), 2);
  // Lexicographic emission: "a" before "z" regardless of creation order.
  EXPECT_EQ(snapshot.at("counters").AsObject().front().first, "a");
  EXPECT_DOUBLE_EQ(snapshot.at("gauges").at("g").AsDouble(), 0.5);
  EXPECT_EQ(snapshot.at("histograms").at("h").at("count").AsInt(), 1);
  EXPECT_EQ(snapshot.at("histograms").at("h").at("buckets").size(), 2u);
}

TEST(Tracer, RecordsInstantsAndSpans) {
  EventTracer tracer;
  tracer.Record({.time = 1.5, .name = "promo", .category = "trial"});
  tracer.Record({.time = 2.0,
                 .duration = 0.5,
                 .name = "job",
                 .category = "worker",
                 .worker = 3});
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].IsSpan());
  EXPECT_TRUE(events[1].IsSpan());

  // JSONL: one line per event.
  const std::string jsonl = tracer.ToJsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  const Json first = Json::Parse(jsonl.substr(0, jsonl.find('\n')));
  EXPECT_DOUBLE_EQ(first.at("t").AsDouble(), 1.5);
  EXPECT_EQ(first.at("name").AsString(), "promo");

  // Chrome trace: microsecond timestamps, X/i phases, tid = worker.
  const Json chrome = tracer.ToChromeTrace();
  const auto& trace_events = chrome.at("traceEvents").AsArray();
  ASSERT_EQ(trace_events.size(), 2u);
  EXPECT_EQ(trace_events[0].at("ph").AsString(), "i");
  EXPECT_EQ(trace_events[1].at("ph").AsString(), "X");
  EXPECT_DOUBLE_EQ(trace_events[1].at("ts").AsDouble(), 2e6);
  EXPECT_DOUBLE_EQ(trace_events[1].at("dur").AsDouble(), 0.5e6);
  EXPECT_EQ(trace_events[1].at("tid").AsInt(), 3);
}

TEST(Telemetry, ClockSelection) {
  Telemetry steady;
  EXPECT_EQ(steady.virtual_clock(), nullptr);
  steady.AdvanceTo(1e9);  // no-op on a steady clock
  EXPECT_LT(steady.Now(), 1e6);

  auto sim = Telemetry::ForSimulation();
  ASSERT_NE(sim->virtual_clock(), nullptr);
  sim->AdvanceTo(42.5);
  EXPECT_DOUBLE_EQ(sim->Now(), 42.5);
  sim->Event("e", "c");
  ASSERT_EQ(sim->tracer().size(), 1u);
  EXPECT_DOUBLE_EQ(sim->tracer().Events()[0].time, 42.5);
}

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

class RankEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    return config.GetDouble("x") * (1.0 + 1.0 / resource);
  }
  double Duration(const Configuration& config, Resource from,
                  Resource to) override {
    return (to - from) * (1.0 + config.GetDouble("x"));
  }
};

struct SimRunOutput {
  std::string jsonl;
  std::string chrome;
  Json metrics;
  DriverResult result;
};

SimRunOutput RunSeededSimulation(std::uint64_t seed) {
  AshaOptions options;
  options.r = 1;
  options.R = 16;
  options.eta = 4;
  options.max_trials = 64;
  options.seed = seed;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  auto telemetry = Telemetry::ForSimulation();
  asha.SetTelemetry(telemetry.get());

  RankEnv env;
  DriverOptions driver_options;
  driver_options.num_workers = 8;
  driver_options.seed = seed ^ 0xabcdULL;
  driver_options.hazards.drop_probability = 0.05;
  driver_options.telemetry = telemetry.get();
  SimulationDriver driver(asha, env, driver_options);

  SimRunOutput out;
  out.result = driver.Run();
  out.jsonl = telemetry->tracer().ToJsonl();
  out.chrome = telemetry->tracer().ToChromeTrace().Dump(2);
  out.metrics = telemetry->MetricsJson();
  return out;
}

TEST(Telemetry, SeededSimulationTracesAreByteIdentical) {
  const SimRunOutput a = RunSeededSimulation(7);
  const SimRunOutput b = RunSeededSimulation(7);
  EXPECT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_EQ(a.metrics, b.metrics);

  // A different seed produces a different trace (the determinism above is
  // not vacuous).
  const SimRunOutput c = RunSeededSimulation(8);
  EXPECT_NE(a.jsonl, c.jsonl);
}

TEST(Telemetry, SimulationCountsMatchDriverResult) {
  const SimRunOutput run = RunSeededSimulation(21);
  const Json& counters = run.metrics.at("metrics").at("counters");
  EXPECT_EQ(counters.at("driver.jobs_completed").AsInt(),
            static_cast<std::int64_t>(run.result.jobs_completed));
  if (run.result.jobs_dropped > 0) {
    EXPECT_EQ(counters.at("driver.jobs_dropped").AsInt(),
              static_cast<std::int64_t>(run.result.jobs_dropped));
    EXPECT_EQ(counters.at("scheduler.jobs_lost").AsInt(),
              static_cast<std::int64_t>(run.result.jobs_dropped));
  }
  EXPECT_EQ(counters.at("scheduler.results").AsInt(),
            static_cast<std::int64_t>(run.result.jobs_completed));

  // Worker spans use distinct tracks bounded by the worker-pool size, and
  // every span falls within the run's virtual-time horizon.
  std::int64_t max_tid = 0;
  std::size_t spans = 0;
  const Json chrome = Json::Parse(run.chrome);
  for (const auto& event : chrome.at("traceEvents").AsArray()) {
    if (event.at("ph").AsString() != "X") continue;
    ++spans;
    max_tid = std::max(max_tid, event.at("tid").AsInt());
    EXPECT_GE(event.at("ts").AsDouble(), 0);
    EXPECT_GT(event.at("dur").AsDouble(), 0);
  }
  EXPECT_EQ(spans, run.result.jobs_completed + run.result.jobs_dropped);
  EXPECT_LT(max_tid, 8);
}

TEST(Telemetry, ExecutorEmitsSpansAndHistograms) {
  AshaOptions options;
  options.r = 1;
  options.R = 16;
  options.eta = 4;
  options.max_trials = 40;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  Telemetry telemetry;  // steady clock: the real-execution configuration
  asha.SetTelemetry(&telemetry);

  ExecutorOptions executor_options;
  executor_options.num_workers = 4;
  executor_options.telemetry = &telemetry;
  ThreadPoolExecutor executor(
      asha, [](const Job& job) { return job.config.GetDouble("x"); },
      executor_options);
  const ExecutorResult result = executor.Run();

  EXPECT_GT(result.jobs_completed, 0u);
  const Json snapshot = telemetry.metrics().Snapshot();
  EXPECT_EQ(snapshot.at("counters").at("executor.jobs_completed").AsInt(),
            static_cast<std::int64_t>(result.jobs_completed));
  EXPECT_EQ(snapshot.at("histograms")
                .at("executor.job_seconds")
                .at("count")
                .AsInt(),
            static_cast<std::int64_t>(result.jobs_completed));
  EXPECT_GE(snapshot.at("histograms")
                .at("executor.queue_wait_seconds")
                .at("count")
                .AsInt(),
            static_cast<std::int64_t>(result.jobs_completed));

  // One span per executed job, on a valid worker track.
  std::size_t spans = 0;
  for (const auto& event : telemetry.tracer().Events()) {
    if (!event.IsSpan()) continue;
    ++spans;
    EXPECT_EQ(event.category, "worker");
    EXPECT_GE(event.worker, 0);
    EXPECT_LT(event.worker, 4);
  }
  EXPECT_EQ(spans, result.jobs_completed + result.jobs_lost);
}

TEST(Telemetry, ExecutorCountsLostJobs) {
  AshaOptions options;
  options.r = 1;
  options.R = 4;
  options.eta = 4;
  options.max_trials = 20;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  Telemetry telemetry;
  ExecutorOptions executor_options;
  executor_options.num_workers = 2;
  executor_options.telemetry = &telemetry;
  ThreadPoolExecutor executor(
      asha,
      [](const Job& job) -> double {
        if (job.trial_id % 3 == 0) throw std::runtime_error("preempted");
        return job.config.GetDouble("x");
      },
      executor_options);
  const ExecutorResult result = executor.Run();
  EXPECT_GT(result.jobs_lost, 0u);
  EXPECT_EQ(telemetry.metrics().Snapshot()
                .at("counters")
                .at("executor.jobs_lost")
                .AsInt(),
            static_cast<std::int64_t>(result.jobs_lost));
}

TEST(Metrics, ConcurrentUpdatesAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hits");
  Histogram& histogram = registry.histogram("obs", {0.25, 0.5, 0.75});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        histogram.Observe(static_cast<double>((t + i) % 100) / 100.0);
        // Concurrent registration of the same name must also be safe.
        registry.gauge("shared").Set(static_cast<double>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  std::int64_t bucket_total = 0;
  for (std::size_t i = 0; i <= histogram.bounds().size(); ++i) {
    bucket_total += histogram.bucket(i);
  }
  EXPECT_EQ(bucket_total, histogram.count());
}

TEST(Telemetry, SummaryTextListsEventsAndMetrics) {
  auto telemetry = Telemetry::ForSimulation();
  telemetry->AdvanceTo(1.0);
  telemetry->Event("promo", "trial");
  telemetry->Count("scheduler.promotions");
  telemetry->metrics().histogram("lat", {1.0}).Observe(0.5);
  const std::string summary = telemetry->SummaryText();
  EXPECT_NE(summary.find("trial"), std::string::npos);
  EXPECT_NE(summary.find("scheduler.promotions"), std::string::npos);
  EXPECT_NE(summary.find("lat"), std::string::npos);
}

}  // namespace
}  // namespace hypertune
