// Chaos-restart harness: proves crash recovery is decision-exact.
//
// For every (scheduler kind x seed x crash point) it runs the shared
// service scenario twice — once uninterrupted, once killing the server
// after K handled messages and restarting it from its durable state dir
// (latest snapshot + journal-tail replay) — and requires the two decision
// texts (every resolved lease, the incumbent trajectory, the final trial
// table) to be byte-identical. Crash points are picked as fractions of the
// golden run's message count, so they land early (journal-only recovery),
// mid-run, and late (snapshot + tail) without hand-tuned constants.
//
// A final scenario keeps the server down for a stretch of virtual time to
// exercise the workers' capped-exponential reconnect backoff: identity is
// out (leases expire during the outage), so it asserts liveness instead —
// the run still finishes and the workers actually retried.
//
// With --studies N the same contract extends to multi-tenancy: one
// StudyManager hosts N studies (cycling scheduler kind x seed), each with
// its own worker fleet, and is killed/recovered at crash points spread
// across the run. Every study's decision text must be byte-identical to
// its uninterrupted SINGLE-study golden — a crash of the shared server
// perturbs no tenant's search.
//
// Two fault-injection suites extend the contract beyond clean kills:
//
//   --net-faults  routes the run over real TCP with a FaultyTransport on
//   the client side. Benign faults (short reads/writes, EAGAIN bursts,
//   tiny delays) must leave the decision text byte-identical to the
//   in-process golden — the framing layer absorbs them completely. Lossy
//   faults (corruption, mid-frame disconnects) give up identity but must
//   keep liveness: the run finishes, workers retried, the server never
//   crashed.
//
//   --enospc  routes the run through a DurableServer whose file ops pass
//   through a FaultFs. A one-op ENOSPC blip and a one-fsync EIO blip must
//   be invisible (degraded mode entered and exited, decision text still
//   byte-identical); a 40-op ENOSPC burst must keep the server alive and
//   read-only (grants denied, records buffered) and, once space returns,
//   the journal must hold *everything* — proven by recovering a fresh
//   server from the state dir and requiring its decision text to equal
//   the live run's.
//
// Usage: chaos_recovery <scratch-dir> [--quick] [--studies N]
//                       [--net-faults] [--enospc]
//   --quick: one seed, one crash point per kind (CI smoke).
//   --studies N: run the multi-tenant scenario with N studies instead.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "dump_scenario.h"
#include "fault/fault.h"
#include "fault/fault_fs.h"
#include "study_scenario.h"

namespace hypertune {
namespace {

/// First line where the two dumps differ, for the failure report.
std::string FirstDiff(const std::string& golden, const std::string& actual) {
  std::istringstream a(golden);
  std::istringstream b(actual);
  std::string line_a;
  std::string line_b;
  std::size_t line = 1;
  while (true) {
    const bool has_a = static_cast<bool>(std::getline(a, line_a));
    const bool has_b = static_cast<bool>(std::getline(b, line_b));
    if (!has_a && !has_b) return "(no difference found?)";
    if (!has_a || !has_b || line_a != line_b) {
      std::ostringstream out;
      out << "line " << line << ":\n  golden: "
          << (has_a ? line_a : "<end of dump>")
          << "\n  actual: " << (has_b ? line_b : "<end of dump>");
      return out.str();
    }
    ++line;
  }
}

int RunMultiStudyChaos(const std::string& scratch, std::size_t studies,
                       bool quick) {
  // One single-study golden per distinct (kind, seed) combo; every study
  // with that combo must reproduce it byte-for-byte.
  std::map<std::string, std::string> goldens;
  std::size_t golden_messages = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(studies, 9); ++i) {
    const auto [kind, seed] = MultiStudyCombo(i);
    const std::string key = kind + "/" + std::to_string(seed);
    if (goldens.count(key) != 0) continue;
    ServiceDecisionsOptions options;
    options.kind = kind;
    options.seed = seed;
    options.workers = 8;
    const auto golden = RunServiceDecisions(options);
    golden_messages += golden.messages_handled;
    goldens[key] = golden.text;
    std::cout << "golden  " << kind << " seed=" << seed << " messages="
              << golden.messages_handled << " crc32=" << std::hex
              << Crc32(golden.text) << std::dec << "\n";
  }
  // Estimated total traffic, to spread crash points across the run the
  // same way the single-study harness does.
  const std::size_t estimated =
      golden_messages * std::max<std::size_t>(studies / goldens.size(), 1);
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.1, 0.5, 0.9};

  int failures = 0;
  for (const double fraction : fractions) {
    auto crash_at = static_cast<std::size_t>(
        fraction * static_cast<double>(estimated));
    if (crash_at == 0) crash_at = 1;
    MultiStudyOptions options;
    options.studies = studies;
    options.workers = 8;
    options.crash_at = crash_at;
    options.state_dir =
        (std::filesystem::path(scratch) /
         ("studies-" + std::to_string(studies) + "-" +
          std::to_string(crash_at)))
            .string();
    std::filesystem::remove_all(options.state_dir);
    const auto result = RunMultiStudyDecisions(options);

    std::size_t mismatched = 0;
    for (const auto& [name, text] : result.texts) {
      const auto& [kind, seed] = result.combos.at(name);
      const std::string& golden = goldens.at(kind + "/" +
                                             std::to_string(seed));
      if (text != golden) {
        ++mismatched;
        std::cout << "MISMATCH study=" << name << " crash-at=" << crash_at
                  << "\n" << FirstDiff(golden, text) << "\n";
      }
    }
    std::cout << (mismatched == 0 ? "OK      " : "MISMATCH")
              << " studies=" << studies << " crash-at=" << crash_at
              << " crashed=" << result.crashed
              << " recovered=" << result.recovered_studies
              << " matched=" << (result.texts.size() - mismatched) << "/"
              << result.texts.size() << "\n";
    if (mismatched != 0 || !result.crashed ||
        result.recovered_studies != studies) {
      ++failures;
    } else {
      std::filesystem::remove_all(options.state_dir);
    }
  }

  if (failures > 0) {
    std::cout << "multi-study chaos FAILED: " << failures << " run(s)\n";
    return 1;
  }
  std::cout << "multi-study chaos passed: every tenant matched its"
               " single-study golden byte-for-byte\n";
  return 0;
}

int RunNetFaultChaos(bool quick) {
  ServiceDecisionsOptions base;
  base.kind = "asha";
  base.seed = 42;
  base.workers = 8;
  const auto golden = RunServiceDecisions(base);
  std::cout << "golden  " << base.kind << " seed=" << base.seed
            << " messages=" << golden.messages_handled << " crc32="
            << std::hex << Crc32(golden.text) << std::dec << "\n";

  int failures = 0;

  // Benign faults: everything the framing layer can absorb losslessly.
  // Short ops tear frames across arbitrary byte boundaries, EAGAIN bursts
  // force retry loops, small delays shake up timing — none of it may move
  // a single decision byte.
  std::vector<DumpTransport> transports = {DumpTransport::kBinaryTcp};
  if (!quick) transports.push_back(DumpTransport::kJsonTcp);
  for (const DumpTransport transport : transports) {
    FaultPlan plan;
    plan.seed = 7;
    plan.short_op_rate = 0.5;
    plan.eagain_rate = 0.1;
    plan.eagain_burst = 3;
    plan.delay_rate = 0.002;
    plan.delay_seconds = 0.0005;
    FaultyTransport faulty(plan);
    ServiceDecisionsOptions options = base;
    options.transport = transport;
    options.client_io = &faulty;
    const auto result = RunServiceDecisions(options);
    const FaultStats stats = faulty.stats();
    const bool identical = result.text == golden.text;
    const bool exercised = stats.short_ops > 0 && stats.eagains > 0;
    std::cout << (identical && exercised ? "OK      " : "MISMATCH")
              << " net-benign transport=" << DumpTransportName(transport)
              << " ops=" << stats.ops << " short=" << stats.short_ops
              << " eagain=" << stats.eagains << " delays=" << stats.delays
              << "\n";
    if (!identical) {
      ++failures;
      std::cout << FirstDiff(golden.text, result.text) << "\n";
    } else if (!exercised) {
      ++failures;
      std::cout << "  fault plan injected nothing — scenario is vacuous\n";
    }
  }

  // Lossy faults: corruption and mid-frame disconnects lose exchanges for
  // real, so identity is out; the contract is liveness. The study still
  // finishes, workers visibly retried, and the server survived every
  // mangled frame (its CRC layer turns corruption into error replies).
  {
    FaultPlan plan;
    plan.seed = 11;
    plan.short_op_rate = 0.3;
    plan.corrupt_rate = 0.01;
    plan.disconnect_rate = 0.002;
    FaultyTransport faulty(plan);
    ServiceDecisionsOptions options = base;
    options.transport = DumpTransport::kBinaryTcp;
    options.client_io = &faulty;
    const auto result = RunServiceDecisions(options);
    const FaultStats stats = faulty.stats();
    const bool exercised = stats.corruptions > 0 && stats.disconnects > 0;
    const bool ok = result.finished && result.worker_retries > 0 && exercised;
    std::cout << (ok ? "OK      " : "FAIL    ")
              << " net-lossy finished=" << result.finished
              << " retries=" << result.worker_retries
              << " corrupted=" << stats.corruptions
              << " disconnects=" << stats.disconnects << "\n";
    if (!ok) ++failures;
  }

  if (failures > 0) {
    std::cout << "network-fault chaos FAILED: " << failures
              << " scenario(s)\n";
    return 1;
  }
  std::cout << "network-fault chaos passed: benign faults were byte-"
               "invisible, lossy faults cost only retries\n";
  return 0;
}

int RunEnospcChaos(const std::string& scratch, bool quick) {
  (void)quick;  // every scenario here is one seeded run; nothing to trim
  ServiceDecisionsOptions base;
  base.kind = "asha";
  base.seed = 42;
  base.workers = 8;
  const auto golden = RunServiceDecisions(base);
  std::cout << "golden  " << base.kind << " seed=" << base.seed
            << " messages=" << golden.messages_handled << " crc32="
            << std::hex << Crc32(golden.text) << std::dec << "\n";

  // Durable runs route every journal write/fsync through the FaultFs; a
  // huge snapshot_every keeps snapshots out of the op stream so windows
  // land on journal ops only.
  const auto durable_options = [&](const std::string& dir, FileOps* ops) {
    ServiceDecisionsOptions options = base;
    CrashPlan plan;
    plan.crash_at = 0;  // durable, never killed — the fault is the chaos
    plan.state_dir = dir;
    plan.snapshot_every = 1u << 30;
    options.crash = plan;
    options.file_ops = ops;
    return options;
  };

  int failures = 0;

  // Probe: an uninterrupted durable run counts file ops (and locates the
  // kEveryN fsyncs) so the fault windows below can be placed as fractions
  // of the real op stream, not hand-tuned constants.
  const std::string probe_dir =
      (std::filesystem::path(scratch) / "enospc-probe").string();
  std::filesystem::remove_all(probe_dir);
  FaultFs probe({});
  const auto probe_run = RunServiceDecisions(durable_options(probe_dir, &probe));
  const std::size_t total_ops = probe.ops_seen();
  const auto fsyncs = probe.op_indices(FaultFs::OpKind::kFsync);
  if (probe_run.text != golden.text || total_ops == 0 || fsyncs.empty()) {
    std::cout << "FAIL     enospc-probe: durable run diverged from golden"
              << " (ops=" << total_ops << " fsyncs=" << fsyncs.size()
              << ")\n";
    return 1;
  }
  std::filesystem::remove_all(probe_dir);
  std::cout << "probe    file-ops=" << total_ops
            << " fsyncs=" << fsyncs.size() << "\n";

  // Scenario 1 — ENOSPC blip: exactly one failing op mid-run. The server
  // enters degraded mode, the very next message's probe flushes the
  // buffered record and exits it; no grant is ever denied, so the decision
  // stream must stay byte-identical to the golden.
  {
    const std::string dir =
        (std::filesystem::path(scratch) / "enospc-blip").string();
    std::filesystem::remove_all(dir);
    FaultFs faults({FsFaultWindow{.begin = total_ops / 2, .count = 1}});
    const auto result = RunServiceDecisions(durable_options(dir, &faults));
    const auto& d = result.durability;
    const bool identical = result.text == golden.text;
    const bool degraded_cycle =
        d.degraded_entered >= 1 && d.degraded_exited >= 1 &&
        !result.degraded_final;
    const bool ok = identical && degraded_cycle &&
                    faults.faults_injected() == 1 && result.finished;
    std::cout << (ok ? "OK      " : "FAIL    ")
              << " enospc-blip at-op=" << total_ops / 2
              << " write-failures=" << d.journal_write_failures
              << " sync-failures=" << d.journal_sync_failures
              << " degraded=" << d.degraded_entered << "/" << d.degraded_exited
              << " denied=" << d.grants_denied << "\n";
    if (!identical) std::cout << FirstDiff(golden.text, result.text) << "\n";
    if (!ok) ++failures;
    else std::filesystem::remove_all(dir);
  }

  // Scenario 2 — EIO on exactly one kEveryN fsync (the wal.cc regression:
  // this return value used to be unchecked). The frame's bytes are on
  // disk, only durability lags; the next probe fsyncs and recovers.
  // Nothing is denied or buffered, so identity must hold here too.
  {
    const std::string dir =
        (std::filesystem::path(scratch) / "eio-fsync").string();
    std::filesystem::remove_all(dir);
    const std::size_t target = fsyncs[fsyncs.size() / 2];
    FaultFs faults({FsFaultWindow{.begin = target,
                                  .count = 1,
                                  .error = EIO,
                                  .fail_writes = false,
                                  .fail_renames = false,
                                  .fail_truncates = false}});
    const auto result = RunServiceDecisions(durable_options(dir, &faults));
    const auto& d = result.durability;
    const bool identical = result.text == golden.text;
    const bool ok = identical && d.journal_sync_failures >= 1 &&
                    d.degraded_entered >= 1 && d.degraded_exited >= 1 &&
                    !result.degraded_final && d.records_buffered == 0 &&
                    d.grants_denied == 0 && faults.faults_injected() == 1 &&
                    result.finished;
    std::cout << (ok ? "OK      " : "FAIL    ")
              << " eio-fsync at-op=" << target
              << " sync-failures=" << d.journal_sync_failures
              << " degraded=" << d.degraded_entered << "/" << d.degraded_exited
              << " buffered=" << d.records_buffered << "\n";
    if (!identical) std::cout << FirstDiff(golden.text, result.text) << "\n";
    if (!ok) ++failures;
    else std::filesystem::remove_all(dir);
  }

  // Scenario 3 — ENOSPC burst: the disk stays full across ~40 ops. The
  // server must go read-only (grants denied, reports/heartbeats buffered),
  // resume journaling when the window clears, and finish the study. The
  // live run's decisions legitimately differ from the golden (denials
  // shift grants), so the check is recovery equivalence instead: a fresh
  // server recovered from the state dir must reproduce the live run's
  // decision text exactly — i.e. every buffered record landed in the
  // journal, in order.
  {
    const std::string dir =
        (std::filesystem::path(scratch) / "enospc-burst").string();
    std::filesystem::remove_all(dir);
    FaultFs faults({FsFaultWindow{.begin = total_ops / 2, .count = 40}});
    const auto result = RunServiceDecisions(durable_options(dir, &faults));
    const auto& d = result.durability;
    const bool degraded_cycle =
        d.degraded_entered >= 1 && d.degraded_exited >= 1 &&
        !result.degraded_final;
    const bool read_only_held =
        d.grants_denied > 0 && d.records_buffered > 0;
    bool recovery_identical = false;
    {
      auto scheduler = MakeDumpScheduler(base.kind, base.seed);
      DurableServer recovered(*scheduler, DumpServerOptions(),
                              DurabilityOptions{.dir = dir});
      recovery_identical =
          recovered.recovered() &&
          FormatDecisionText(base.kind, base.seed, base.workers,
                             recovered.server(), *scheduler) == result.text;
      if (!recovery_identical) {
        std::cout << FirstDiff(
                         result.text,
                         FormatDecisionText(base.kind, base.seed,
                                            base.workers, recovered.server(),
                                            *scheduler))
                  << "\n";
      }
    }
    const bool ok = result.finished && degraded_cycle && read_only_held &&
                    recovery_identical;
    std::cout << (ok ? "OK      " : "FAIL    ")
              << " enospc-burst ops=[" << total_ops / 2 << ","
              << total_ops / 2 + 40 << ")"
              << " denied=" << d.grants_denied
              << " buffered=" << d.records_buffered
              << " degraded=" << d.degraded_entered << "/"
              << d.degraded_exited
              << " recovery-identical=" << recovery_identical << "\n";
    if (!ok) ++failures;
    else std::filesystem::remove_all(dir);
  }

  if (failures > 0) {
    std::cout << "enospc chaos FAILED: " << failures << " scenario(s)\n";
    return 1;
  }
  std::cout << "enospc chaos passed: blips were byte-invisible, the burst"
               " went read-only and lost nothing\n";
  return 0;
}

int RunChaos(const std::string& scratch, bool quick) {
  const std::vector<std::string> kinds = {"asha", "sha", "hyperband"};
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{42}
            : std::vector<std::uint64_t>{1, 42, 1000};
  // Crash after these fractions of the golden run's handled messages.
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.1, 0.5, 0.9};

  int failures = 0;
  for (const auto& kind : kinds) {
    for (const auto seed : seeds) {
      ServiceDecisionsOptions options;
      options.kind = kind;
      options.seed = seed;
      options.workers = 8;
      const auto golden = RunServiceDecisions(options);
      std::cout << "golden  " << kind << " seed=" << seed << " messages="
                << golden.messages_handled << " crc32=" << std::hex
                << Crc32(golden.text) << std::dec << "\n";

      for (const double fraction : fractions) {
        auto crash_at = static_cast<std::size_t>(
            fraction * static_cast<double>(golden.messages_handled));
        if (crash_at == 0) crash_at = 1;
        const std::string state_dir =
            (std::filesystem::path(scratch) /
             (kind + "-" + std::to_string(seed) + "-" +
              std::to_string(crash_at)))
                .string();
        std::filesystem::remove_all(state_dir);

        ServiceDecisionsOptions chaos = options;
        CrashPlan plan;
        plan.crash_at = crash_at;
        plan.state_dir = state_dir;
        // Small enough that late crash points recover through a snapshot +
        // journal tail, not a full-journal replay.
        plan.snapshot_every = 64;
        chaos.crash = plan;
        const auto result = RunServiceDecisions(chaos);

        const bool identical = result.text == golden.text;
        std::cout << (identical ? "OK      " : "MISMATCH")
                  << " " << kind << " seed=" << seed
                  << " crash-at=" << crash_at
                  << " replayed=" << result.replayed_events
                  << " generation=" << result.generation << "\n";
        if (!identical) {
          ++failures;
          std::cout << FirstDiff(golden.text, result.text) << "\n";
        } else {
          std::filesystem::remove_all(state_dir);
        }
      }
    }
  }

  // Downtime scenario: the server stays dead for 10 virtual seconds, so
  // workers must back off, hold their undeliverable reports, and reconnect.
  {
    ServiceDecisionsOptions options;
    options.kind = "asha";
    options.seed = 42;
    options.workers = 8;
    const auto golden = RunServiceDecisions(options);
    const std::string state_dir =
        (std::filesystem::path(scratch) / "downtime").string();
    std::filesystem::remove_all(state_dir);
    ServiceDecisionsOptions chaos = options;
    CrashPlan plan;
    plan.crash_at = golden.messages_handled / 2;
    plan.state_dir = state_dir;
    plan.downtime = 10.0;
    chaos.crash = plan;
    const auto result = RunServiceDecisions(chaos);
    const bool ok =
        result.finished && result.recovered && result.worker_retries > 0;
    std::cout << (ok ? "OK      " : "FAIL    ")
              << " downtime recovery: finished=" << result.finished
              << " recovered=" << result.recovered
              << " retries=" << result.worker_retries << "\n";
    if (!ok) ++failures;
    else std::filesystem::remove_all(state_dir);
  }

  if (failures > 0) {
    std::cout << "chaos recovery FAILED: " << failures << " scenario(s)\n";
    return 1;
  }
  std::cout << "chaos recovery passed: every crashed run matched its golden"
               " byte-for-byte\n";
  return 0;
}

}  // namespace
}  // namespace hypertune

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: chaos_recovery <scratch-dir> [--quick]"
                 " [--studies N] [--net-faults] [--enospc]\n";
    return 2;
  }
  bool quick = false;
  bool net_faults = false;
  bool enospc = false;
  std::size_t studies = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--net-faults") {
      net_faults = true;
    } else if (arg == "--enospc") {
      enospc = true;
    } else if (arg == "--studies" && i + 1 < argc) {
      studies = static_cast<std::size_t>(std::stoul(argv[++i]));
      if (studies == 0) {
        std::cerr << "--studies needs a positive count\n";
        return 2;
      }
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 2;
    }
  }
  if (net_faults) return hypertune::RunNetFaultChaos(quick);
  if (enospc) return hypertune::RunEnospcChaos(argv[1], quick);
  if (studies > 0) {
    return hypertune::RunMultiStudyChaos(argv[1], studies, quick);
  }
  return hypertune::RunChaos(argv[1], quick);
}
