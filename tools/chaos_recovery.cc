// Chaos-restart harness: proves crash recovery is decision-exact.
//
// For every (scheduler kind x seed x crash point) it runs the shared
// service scenario twice — once uninterrupted, once killing the server
// after K handled messages and restarting it from its durable state dir
// (latest snapshot + journal-tail replay) — and requires the two decision
// texts (every resolved lease, the incumbent trajectory, the final trial
// table) to be byte-identical. Crash points are picked as fractions of the
// golden run's message count, so they land early (journal-only recovery),
// mid-run, and late (snapshot + tail) without hand-tuned constants.
//
// A final scenario keeps the server down for a stretch of virtual time to
// exercise the workers' capped-exponential reconnect backoff: identity is
// out (leases expire during the outage), so it asserts liveness instead —
// the run still finishes and the workers actually retried.
//
// With --studies N the same contract extends to multi-tenancy: one
// StudyManager hosts N studies (cycling scheduler kind x seed), each with
// its own worker fleet, and is killed/recovered at crash points spread
// across the run. Every study's decision text must be byte-identical to
// its uninterrupted SINGLE-study golden — a crash of the shared server
// perturbs no tenant's search.
//
// Usage: chaos_recovery <scratch-dir> [--quick] [--studies N]
//   --quick: one seed, one crash point per kind (CI smoke).
//   --studies N: run the multi-tenant scenario with N studies instead.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "dump_scenario.h"
#include "study_scenario.h"

namespace hypertune {
namespace {

/// First line where the two dumps differ, for the failure report.
std::string FirstDiff(const std::string& golden, const std::string& actual) {
  std::istringstream a(golden);
  std::istringstream b(actual);
  std::string line_a;
  std::string line_b;
  std::size_t line = 1;
  while (true) {
    const bool has_a = static_cast<bool>(std::getline(a, line_a));
    const bool has_b = static_cast<bool>(std::getline(b, line_b));
    if (!has_a && !has_b) return "(no difference found?)";
    if (!has_a || !has_b || line_a != line_b) {
      std::ostringstream out;
      out << "line " << line << ":\n  golden: "
          << (has_a ? line_a : "<end of dump>")
          << "\n  actual: " << (has_b ? line_b : "<end of dump>");
      return out.str();
    }
    ++line;
  }
}

int RunMultiStudyChaos(const std::string& scratch, std::size_t studies,
                       bool quick) {
  // One single-study golden per distinct (kind, seed) combo; every study
  // with that combo must reproduce it byte-for-byte.
  std::map<std::string, std::string> goldens;
  std::size_t golden_messages = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(studies, 9); ++i) {
    const auto [kind, seed] = MultiStudyCombo(i);
    const std::string key = kind + "/" + std::to_string(seed);
    if (goldens.count(key) != 0) continue;
    ServiceDecisionsOptions options;
    options.kind = kind;
    options.seed = seed;
    options.workers = 8;
    const auto golden = RunServiceDecisions(options);
    golden_messages += golden.messages_handled;
    goldens[key] = golden.text;
    std::cout << "golden  " << kind << " seed=" << seed << " messages="
              << golden.messages_handled << " crc32=" << std::hex
              << Crc32(golden.text) << std::dec << "\n";
  }
  // Estimated total traffic, to spread crash points across the run the
  // same way the single-study harness does.
  const std::size_t estimated =
      golden_messages * std::max<std::size_t>(studies / goldens.size(), 1);
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.1, 0.5, 0.9};

  int failures = 0;
  for (const double fraction : fractions) {
    auto crash_at = static_cast<std::size_t>(
        fraction * static_cast<double>(estimated));
    if (crash_at == 0) crash_at = 1;
    MultiStudyOptions options;
    options.studies = studies;
    options.workers = 8;
    options.crash_at = crash_at;
    options.state_dir =
        (std::filesystem::path(scratch) /
         ("studies-" + std::to_string(studies) + "-" +
          std::to_string(crash_at)))
            .string();
    std::filesystem::remove_all(options.state_dir);
    const auto result = RunMultiStudyDecisions(options);

    std::size_t mismatched = 0;
    for (const auto& [name, text] : result.texts) {
      const auto& [kind, seed] = result.combos.at(name);
      const std::string& golden = goldens.at(kind + "/" +
                                             std::to_string(seed));
      if (text != golden) {
        ++mismatched;
        std::cout << "MISMATCH study=" << name << " crash-at=" << crash_at
                  << "\n" << FirstDiff(golden, text) << "\n";
      }
    }
    std::cout << (mismatched == 0 ? "OK      " : "MISMATCH")
              << " studies=" << studies << " crash-at=" << crash_at
              << " crashed=" << result.crashed
              << " recovered=" << result.recovered_studies
              << " matched=" << (result.texts.size() - mismatched) << "/"
              << result.texts.size() << "\n";
    if (mismatched != 0 || !result.crashed ||
        result.recovered_studies != studies) {
      ++failures;
    } else {
      std::filesystem::remove_all(options.state_dir);
    }
  }

  if (failures > 0) {
    std::cout << "multi-study chaos FAILED: " << failures << " run(s)\n";
    return 1;
  }
  std::cout << "multi-study chaos passed: every tenant matched its"
               " single-study golden byte-for-byte\n";
  return 0;
}

int RunChaos(const std::string& scratch, bool quick) {
  const std::vector<std::string> kinds = {"asha", "sha", "hyperband"};
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{42}
            : std::vector<std::uint64_t>{1, 42, 1000};
  // Crash after these fractions of the golden run's handled messages.
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.1, 0.5, 0.9};

  int failures = 0;
  for (const auto& kind : kinds) {
    for (const auto seed : seeds) {
      ServiceDecisionsOptions options;
      options.kind = kind;
      options.seed = seed;
      options.workers = 8;
      const auto golden = RunServiceDecisions(options);
      std::cout << "golden  " << kind << " seed=" << seed << " messages="
                << golden.messages_handled << " crc32=" << std::hex
                << Crc32(golden.text) << std::dec << "\n";

      for (const double fraction : fractions) {
        auto crash_at = static_cast<std::size_t>(
            fraction * static_cast<double>(golden.messages_handled));
        if (crash_at == 0) crash_at = 1;
        const std::string state_dir =
            (std::filesystem::path(scratch) /
             (kind + "-" + std::to_string(seed) + "-" +
              std::to_string(crash_at)))
                .string();
        std::filesystem::remove_all(state_dir);

        ServiceDecisionsOptions chaos = options;
        CrashPlan plan;
        plan.crash_at = crash_at;
        plan.state_dir = state_dir;
        // Small enough that late crash points recover through a snapshot +
        // journal tail, not a full-journal replay.
        plan.snapshot_every = 64;
        chaos.crash = plan;
        const auto result = RunServiceDecisions(chaos);

        const bool identical = result.text == golden.text;
        std::cout << (identical ? "OK      " : "MISMATCH")
                  << " " << kind << " seed=" << seed
                  << " crash-at=" << crash_at
                  << " replayed=" << result.replayed_events
                  << " generation=" << result.generation << "\n";
        if (!identical) {
          ++failures;
          std::cout << FirstDiff(golden.text, result.text) << "\n";
        } else {
          std::filesystem::remove_all(state_dir);
        }
      }
    }
  }

  // Downtime scenario: the server stays dead for 10 virtual seconds, so
  // workers must back off, hold their undeliverable reports, and reconnect.
  {
    ServiceDecisionsOptions options;
    options.kind = "asha";
    options.seed = 42;
    options.workers = 8;
    const auto golden = RunServiceDecisions(options);
    const std::string state_dir =
        (std::filesystem::path(scratch) / "downtime").string();
    std::filesystem::remove_all(state_dir);
    ServiceDecisionsOptions chaos = options;
    CrashPlan plan;
    plan.crash_at = golden.messages_handled / 2;
    plan.state_dir = state_dir;
    plan.downtime = 10.0;
    chaos.crash = plan;
    const auto result = RunServiceDecisions(chaos);
    const bool ok =
        result.finished && result.recovered && result.worker_retries > 0;
    std::cout << (ok ? "OK      " : "FAIL    ")
              << " downtime recovery: finished=" << result.finished
              << " recovered=" << result.recovered
              << " retries=" << result.worker_retries << "\n";
    if (!ok) ++failures;
    else std::filesystem::remove_all(state_dir);
  }

  if (failures > 0) {
    std::cout << "chaos recovery FAILED: " << failures << " scenario(s)\n";
    return 1;
  }
  std::cout << "chaos recovery passed: every crashed run matched its golden"
               " byte-for-byte\n";
  return 0;
}

}  // namespace
}  // namespace hypertune

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: chaos_recovery <scratch-dir> [--quick]"
                 " [--studies N]\n";
    return 2;
  }
  bool quick = false;
  std::size_t studies = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--studies" && i + 1 < argc) {
      studies = static_cast<std::size_t>(std::stoul(argv[++i]));
      if (studies == 0) {
        std::cerr << "--studies needs a positive count\n";
        return 2;
      }
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 2;
    }
  }
  if (studies > 0) {
    return hypertune::RunMultiStudyChaos(argv[1], studies, quick);
  }
  return hypertune::RunChaos(argv[1], quick);
}
