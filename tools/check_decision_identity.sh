#!/usr/bin/env bash
# Decision-identity gate: proves a change did not alter scheduling behavior.
#
#   tools/check_decision_identity.sh <path-to-decision_dump> [golden-file]
#
# Two layers:
#  1. Golden digests — every committed config (scheduler kind x seed x
#     worker count) is dumped and its sha256 compared against
#     tools/golden/decision_digests.txt. These runs are pure arithmetic
#     (no libm calls), so the digests are stable across compilers and
#     optimization levels; an intentional behavior change must regenerate
#     the golden file (rerun the loop below and commit the new digests).
#     A line's optional 5th field selects a dump mode: "decisions" runs
#     decision_dump with --decisions-only — the pure decision text the
#     crash-recovery harness (chaos_recovery) must reproduce byte-for-byte
#     after killing and restarting the server.
#  2. Hazard parity — decision_dump --hazards is self-verifying: it replays
#     one seeded hazard stream through the simulator and the real
#     ThreadPoolExecutor and exits nonzero if any per-job complete/drop
#     decision diverges. Hazard draws go through libm (log/exp), so these
#     runs are checked by the tool's own cross-backend comparison rather
#     than by committed digests.
set -u

DUMP=${1:?usage: check_decision_identity.sh <decision_dump-binary> [golden-file]}
GOLDEN=${2:-"$(dirname "$0")/golden/decision_digests.txt"}

if [[ ! -x "$DUMP" ]]; then
  echo "error: '$DUMP' is not an executable decision_dump binary" >&2
  exit 2
fi
if [[ ! -r "$GOLDEN" ]]; then
  echo "error: golden digest file '$GOLDEN' not found" >&2
  exit 2
fi

failures=0

while read -r digest kind seed workers mode; do
  [[ -z "$digest" || "$digest" == \#* ]] && continue
  flags=()
  label="$kind seed=$seed workers=$workers"
  if [[ "${mode:-}" == "decisions" ]]; then
    flags=(--decisions-only)
    label="$label decisions"
  fi
  actual=$("$DUMP" "$kind" "$seed" "$workers" "${flags[@]}" | sha256sum | cut -d' ' -f1)
  if [[ "$actual" == "$digest" ]]; then
    echo "OK      $label"
  else
    echo "DIFF    $label"
    echo "        golden $digest"
    echo "        actual $actual"
    failures=$((failures + 1))
  fi
done < "$GOLDEN"

for kind in asha sha hyperband; do
  if out=$("$DUMP" "$kind" 42 8 --hazards 0.5,0.002); then
    echo "OK      $kind hazard parity ($(grep -o 'parity=OK jobs=[0-9]*' <<<"$out"))"
  else
    echo "FAIL    $kind hazard parity (simulator vs executor diverged)"
    grep 'parity=' <<<"$out" || true
    failures=$((failures + 1))
  fi
done

if (( failures > 0 )); then
  echo "decision identity check FAILED: $failures mismatch(es)"
  exit 1
fi
echo "decision identity check passed"
