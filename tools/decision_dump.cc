// Decision-identity dump: drives a scheduler through the simulator and
// through the tuning-service protocol, printing every scheduling decision
// (job hand-outs, completions, recommendations) plus the full telemetry
// trace as deterministic JSONL on stdout.
//
// Hot-path PRs must not change scheduling behavior; diffing (or hashing)
// this tool's output before and after a change proves byte-identity:
//
//   ./decision_dump asha 42 500 | sha256sum
//
// With --hazards the dump additionally exercises straggler/drop injection
// on all three backends: a hazard run through the simulator, one through
// the service protocol (workers carrying a HazardInjector), and a
// single-worker parity section proving the real ThreadPoolExecutor makes
// the *same* per-job complete/drop decisions as the simulator for the same
// seed (wall-clock timestamps are deliberately excluded, so this section is
// deterministic too). The parity check is self-verifying: a divergence
// prints the first mismatching job and exits nonzero.
//
// With --decisions-only the dump prints the pure decision text (resolved
// leases, incumbent trajectory, final trial table — no telemetry trace):
// the payload the crash-recovery harness must reproduce byte-for-byte.
// --crash-at K --state-dir D runs that same service scenario through a
// DurableServer, kills it after K handled messages, restarts it from disk
// (snapshot + journal replay), and prints the same decision text — so
//
//   ./decision_dump asha 42 8 --decisions-only | sha256sum
//   ./decision_dump asha 42 8 --crash-at 500 --state-dir /tmp/d | sha256sum
//
// must agree (and match tools/golden/decision_digests.txt).
//
// With --transport {json-tcp,binary-tcp} every service-protocol message is
// routed through a real NetServer over loopback TCP (src/net) instead of a
// direct call; the dump text never mentions the transport precisely so the
// three variants can be diffed byte-for-byte — the wire layer's
// decision-invariance proof.
//
// Usage: decision_dump <asha|sha|hyperband> <seed> <workers>
//                      [--hazards <straggler_std>,<drop_prob>]
//                      [--decisions-only]
//                      [--crash-at <K> --state-dir <dir>] [--downtime <T>]
//                      [--transport inproc|json-tcp|binary-tcp]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/executor.h"
#include "sim/driver.h"
#include "telemetry/telemetry.h"
#include "dump_scenario.h"

namespace hypertune {
namespace {

// Which event-queue engine drives the simulator sections (--engine). The
// goldens must hash identically under either value — that is the point.
SimEngine g_engine = SimEngine::kBinaryHeap;

std::unique_ptr<Scheduler> MakeScheduler(const std::string& kind,
                                         std::uint64_t seed) {
  auto scheduler = MakeDumpScheduler(kind, seed);
  if (scheduler == nullptr) {
    std::cerr << "unknown scheduler kind '" << kind << "'\n";
    std::exit(2);
  }
  return scheduler;
}

DriverResult RunDriver(const std::string& kind, std::uint64_t seed,
                       int workers, const HazardOptions& hazards,
                       Telemetry* telemetry) {
  auto scheduler = MakeScheduler(kind, seed);
  scheduler->SetTelemetry(telemetry);
  DumpEnv env;
  DriverOptions options;
  options.num_workers = workers;
  options.time_limit = 1e6;
  options.seed = seed;
  options.max_completed_jobs = 2000;
  options.hazards = hazards;
  options.telemetry = telemetry;
  options.event_queue = g_engine;
  SimulationDriver driver(*scheduler, env, options);
  return driver.Run();
}

void PrintRecords(const std::vector<RunRecord>& records) {
  for (const auto& record : records) {
    Json line = JsonObject{};
    line.Set("t", Json(record.end_time));
    line.Set("trial", Json(record.trial_id));
    line.Set("rung", Json(record.rung));
    line.Set("bracket", Json(record.bracket));
    line.Set("loss", Json(record.loss));
    line.Set("dropped", Json(record.lost));
    std::cout << line.Dump() << "\n";
  }
}

void DumpDriverRun(const std::string& kind, std::uint64_t seed, int workers) {
  auto telemetry = Telemetry::ForSimulation();
  const DriverResult result =
      RunDriver(kind, seed, workers, HazardOptions{}, telemetry.get());

  std::cout << "== driver " << kind << " seed=" << seed
            << " workers=" << workers << "\n";
  PrintRecords(result.completions);
  std::cout << telemetry->tracer().ToJsonl();
}

void DumpServiceRun(const std::string& kind, std::uint64_t seed, int workers,
                    const HazardOptions& hazards, DumpTransport transport) {
  auto scheduler = MakeScheduler(kind, seed);
  auto telemetry = Telemetry::ForSimulation();
  scheduler->SetTelemetry(telemetry.get());
  DumpEnv env;
  TuningServer server(*scheduler,
                      {.lease_timeout = 30, .telemetry = telemetry.get()});

  // With a TCP transport every message crosses a real loopback socket via
  // a NetServer in message-clock mode; the dump text (stdout) deliberately
  // never mentions the transport, because byte-identity across transports
  // is the property the goldens pin down.
  std::optional<NetServer> net;
  std::vector<std::unique_ptr<NetWorkerClient>> clients;
  if (transport != DumpTransport::kInProc) {
    NetServerOptions net_options;
    net_options.clock = NetClock::kMessage;
    // Virtual time: idle expiry has nothing to do; park the timer so it
    // never races this thread's reads of scheduler state.
    net_options.tick_interval = 3600;
    net.emplace(server, net_options);
    net->Start();
    NetClientOptions client_options;
    client_options.transport = transport == DumpTransport::kBinaryTcp
                                   ? WireTransport::kBinary
                                   : WireTransport::kJson;
    const int pool_size = std::min(workers, 64);
    for (int i = 0; i < pool_size; ++i) {
      clients.push_back(std::make_unique<NetWorkerClient>(
          "127.0.0.1", net->port(), client_options));
    }
  }

  // One injector shared by the pool: fates are drawn in job start order,
  // which the virtual-time loop below makes deterministic.
  HazardInjector injector(hazards, seed);
  std::vector<SimulatedWorker> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back(static_cast<std::uint64_t>(i), env,
                      /*heartbeat_interval=*/5.0, /*prefetch=*/1,
                      injector.enabled() ? &injector : nullptr);
  }
  for (double now = 0; now < 2000; now += 0.25) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      SimulatedWorker& worker = pool[i];
      if (now < worker.next_action_time()) continue;
      if (net) {
        worker.OnTick(*clients[i % clients.size()], now);
      } else {
        worker.OnTick(server, now);
      }
    }
    if (scheduler->Finished()) break;
  }
  // Join the event loop before reading scheduler/telemetry state here.
  if (net) net->Stop();

  std::cout << "== service " << kind << " seed=" << seed
            << " workers=" << workers << "\n";
  const auto stats = server.stats();
  std::cout << "assigned=" << stats.jobs_assigned
            << " completed=" << stats.jobs_completed
            << " expired=" << stats.leases_expired << "\n";
  for (const auto& trial : scheduler->trials()) {
    Json line = JsonObject{};
    line.Set("trial", Json(trial.id));
    line.Set("resource", Json(trial.resource_trained));
    line.Set("status", Json(static_cast<int>(trial.status)));
    std::cout << line.Dump() << "\n";
  }
  std::cout << telemetry->tracer().ToJsonl();
}

/// Runs the same seeded hazard stream through the simulator and the real
/// ThreadPoolExecutor (one worker each, so the lease order — and with it
/// the fate-draw order — is the same sequential order on both) and checks
/// the per-job decision sequences match: same trial, rung, outcome, and
/// loss for every resolved lease. Returns false on divergence.
bool DumpHazardParity(const std::string& kind, std::uint64_t seed,
                      const HazardOptions& hazards) {
  const DriverResult sim =
      RunDriver(kind, seed, /*workers=*/1, hazards, /*telemetry=*/nullptr);

  auto scheduler = MakeScheduler(kind, seed);
  DumpEnv env;
  ExecutorOptions options;
  options.num_workers = 1;
  options.max_jobs = 2000;
  options.hazards = hazards;
  options.hazard_seed = seed;
  options.hazard_duration = [&env](const Job& job) {
    return env.Duration(job.config, job.from_resource, job.to_resource);
  };
  ThreadPoolExecutor executor(
      *scheduler, [&env](const Job& job) {
        return env.Loss(job.config, job.to_resource);
      },
      options);
  const ExecutorResult real = executor.Run();

  std::cout << "== hazard-parity " << kind << " seed=" << seed
            << " straggler=" << hazards.straggler_std
            << " drop=" << hazards.drop_probability << "\n";
  std::cout << "sim: completed=" << sim.jobs_completed
            << " dropped=" << sim.jobs_dropped << "\n";
  std::cout << "executor: completed=" << real.jobs_completed
            << " lost=" << real.jobs_lost << "\n";
  // The decision sequence, stripped of timestamps (the executor's are wall
  // clock): one line per resolved lease, in lease order.
  for (const auto& record : sim.completions) {
    Json line = JsonObject{};
    line.Set("trial", Json(record.trial_id));
    line.Set("rung", Json(record.rung));
    line.Set("bracket", Json(record.bracket));
    line.Set("loss", Json(record.loss));
    line.Set("dropped", Json(record.lost));
    std::cout << line.Dump() << "\n";
  }
  if (sim.completions.size() != real.records.size()) {
    std::cout << "parity=MISMATCH sim_jobs=" << sim.completions.size()
              << " executor_jobs=" << real.records.size() << "\n";
    return false;
  }
  for (std::size_t i = 0; i < sim.completions.size(); ++i) {
    const RunRecord& a = sim.completions[i];
    const RunRecord& b = real.records[i];
    if (a.trial_id != b.trial_id || a.rung != b.rung || a.lost != b.lost ||
        a.loss != b.loss) {
      std::cout << "parity=MISMATCH job=" << i << " sim_trial=" << a.trial_id
                << " exec_trial=" << b.trial_id << " sim_lost=" << a.lost
                << " exec_lost=" << b.lost << "\n";
      return false;
    }
  }
  std::cout << "parity=OK jobs=" << sim.completions.size() << "\n";
  return true;
}

bool DumpHazardRuns(const std::string& kind, std::uint64_t seed, int workers,
                    const HazardOptions& hazards, DumpTransport transport) {
  auto telemetry = Telemetry::ForSimulation();
  const DriverResult result =
      RunDriver(kind, seed, workers, hazards, telemetry.get());
  std::cout << "== hazard-driver " << kind << " seed=" << seed
            << " workers=" << workers
            << " straggler=" << hazards.straggler_std
            << " drop=" << hazards.drop_probability << "\n";
  PrintRecords(result.completions);
  std::cout << "completed=" << result.jobs_completed
            << " dropped=" << result.jobs_dropped << "\n";

  DumpServiceRun(kind, seed, workers, hazards, transport);
  return DumpHazardParity(kind, seed, hazards);
}

}  // namespace
}  // namespace hypertune

namespace {

int Usage() {
  std::cerr << "usage: decision_dump <asha|sha|hyperband> <seed> <workers>"
               " [--hazards <straggler_std>,<drop_prob>]"
               " [--decisions-only]"
               " [--crash-at <K> --state-dir <dir>] [--downtime <T>]"
               " [--transport inproc|json-tcp|binary-tcp]"
               " [--engine heap|calendar]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string kind = argv[1];
  const auto seed = static_cast<std::uint64_t>(std::strtoull(argv[2], nullptr, 10));
  const int workers = std::atoi(argv[3]);

  bool have_hazards = false;
  hypertune::HazardOptions hazards;
  bool decisions_only = false;
  std::optional<std::size_t> crash_at;
  std::string state_dir;
  double downtime = 0;
  hypertune::DumpTransport transport = hypertune::DumpTransport::kInProc;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--hazards" && i + 1 < argc) {
      char* rest = nullptr;
      hazards.straggler_std = std::strtod(argv[++i], &rest);
      if (rest == nullptr || *rest != ',') {
        std::cerr << "--hazards wants <straggler_std>,<drop_prob>\n";
        return 2;
      }
      hazards.drop_probability = std::strtod(rest + 1, nullptr);
      have_hazards = true;
    } else if (flag == "--decisions-only") {
      decisions_only = true;
    } else if (flag == "--crash-at" && i + 1 < argc) {
      crash_at = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (flag == "--state-dir" && i + 1 < argc) {
      state_dir = argv[++i];
    } else if (flag == "--downtime" && i + 1 < argc) {
      downtime = std::strtod(argv[++i], nullptr);
    } else if (flag == "--transport" && i + 1 < argc) {
      const auto parsed = hypertune::ParseDumpTransport(argv[++i]);
      if (!parsed) {
        std::cerr << "--transport wants inproc, json-tcp, or binary-tcp\n";
        return 2;
      }
      transport = *parsed;
    } else if (flag == "--engine" && i + 1 < argc) {
      const std::string engine = argv[++i];
      if (engine == "heap") {
        hypertune::g_engine = hypertune::SimEngine::kBinaryHeap;
      } else if (engine == "calendar") {
        hypertune::g_engine = hypertune::SimEngine::kCalendar;
      } else {
        std::cerr << "--engine wants heap or calendar\n";
        return 2;
      }
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return Usage();
    }
  }

  if (crash_at || decisions_only) {
    // The decision-text path: uninterrupted (plain server) by default,
    // crash + recovery through a DurableServer with --crash-at.
    if (crash_at && state_dir.empty()) {
      std::cerr << "--crash-at needs --state-dir\n";
      return 2;
    }
    hypertune::ServiceDecisionsOptions options;
    options.kind = kind;
    options.seed = seed;
    options.workers = workers;
    options.hazards = hazards;
    options.transport = transport;
    if (crash_at) {
      if (transport != hypertune::DumpTransport::kInProc) {
        std::cerr << "--crash-at requires --transport inproc\n";
        return 2;
      }
      hypertune::CrashPlan plan;
      plan.crash_at = *crash_at;
      plan.state_dir = state_dir;
      plan.downtime = downtime;
      options.crash = plan;
    }
    if (hypertune::MakeDumpScheduler(kind, seed) == nullptr) {
      std::cerr << "unknown scheduler kind '" << kind << "'\n";
      return 2;
    }
    const auto result = hypertune::RunServiceDecisions(options);
    std::cout << result.text;
    if (crash_at) {
      std::cerr << "recovered=" << result.recovered
                << " replayed=" << result.replayed_events
                << " generation=" << result.generation
                << " retries=" << result.worker_retries
                << " finished=" << result.finished << "\n";
    }
    return result.finished ? 0 : 1;
  }

  if (have_hazards) {
    return hypertune::DumpHazardRuns(kind, seed, workers, hazards, transport)
               ? 0
               : 1;
  }
  hypertune::DumpDriverRun(kind, seed, workers);
  hypertune::DumpServiceRun(kind, seed, workers, hypertune::HazardOptions{},
                            transport);
  return 0;
}
