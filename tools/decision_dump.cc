// Decision-identity dump: drives a scheduler through the simulator and
// through the tuning-service protocol, printing every scheduling decision
// (job hand-outs, completions, recommendations) plus the full telemetry
// trace as deterministic JSONL on stdout.
//
// Hot-path PRs must not change scheduling behavior; diffing (or hashing)
// this tool's output before and after a change proves byte-identity:
//
//   ./decision_dump asha 42 500 | sha256sum
//
// With --hazards the dump additionally exercises straggler/drop injection
// on all three backends: a hazard run through the simulator, one through
// the service protocol (workers carrying a HazardInjector), and a
// single-worker parity section proving the real ThreadPoolExecutor makes
// the *same* per-job complete/drop decisions as the simulator for the same
// seed (wall-clock timestamps are deliberately excluded, so this section is
// deterministic too). The parity check is self-verifying: a divergence
// prints the first mismatching job and exits nonzero.
//
// Usage: decision_dump <asha|sha|hyperband> <seed> <workers>
//                      [--hazards <straggler_std>,<drop_prob>]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/asha.h"
#include "core/async_hyperband.h"
#include "core/sha.h"
#include "lifecycle/hazards.h"
#include "runtime/executor.h"
#include "service/server.h"
#include "service/worker.h"
#include "sim/driver.h"
#include "telemetry/telemetry.h"

namespace hypertune {
namespace {

SearchSpace DumpSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  space.Add("y", Domain::Continuous(-1.0, 1.0));
  return space;
}

// Deterministic synthetic training: loss improves with resource, ordering
// driven by the sampled point; durations vary per configuration so the
// event queue sees distinct completion times.
class DumpEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    const double x = config.GetDouble("x");
    const double y = config.GetDouble("y");
    return x * x + 0.25 * y * y + 1.0 / (1.0 + resource);
  }
  double Duration(const Configuration& config, Resource from,
                  Resource to) override {
    return (to - from) * (0.5 + config.GetDouble("x"));
  }
};

std::unique_ptr<Scheduler> MakeScheduler(const std::string& kind,
                                         std::uint64_t seed) {
  if (kind == "asha") {
    AshaOptions options;
    options.r = 1;
    options.R = 81;
    options.eta = 3;
    options.max_trials = 300;
    options.seed = seed;
    return std::make_unique<AshaScheduler>(MakeRandomSampler(DumpSpace()),
                                           options);
  }
  if (kind == "sha") {
    ShaOptions options;
    options.n = 81;
    options.r = 1;
    options.R = 81;
    options.eta = 3;
    options.spawn_new_brackets = false;
    options.seed = seed;
    return std::make_unique<SyncShaScheduler>(MakeRandomSampler(DumpSpace()),
                                              options);
  }
  if (kind == "hyperband") {
    AsyncHyperbandOptions options;
    options.n0 = 81;
    options.r = 1;
    options.R = 81;
    options.eta = 3;
    options.seed = seed;
    return std::make_unique<AsyncHyperbandScheduler>(
        MakeRandomSampler(DumpSpace()), options);
  }
  std::cerr << "unknown scheduler kind '" << kind << "'\n";
  std::exit(2);
}

DriverResult RunDriver(const std::string& kind, std::uint64_t seed,
                       int workers, const HazardOptions& hazards,
                       Telemetry* telemetry) {
  auto scheduler = MakeScheduler(kind, seed);
  scheduler->SetTelemetry(telemetry);
  DumpEnv env;
  DriverOptions options;
  options.num_workers = workers;
  options.time_limit = 1e6;
  options.seed = seed;
  options.max_completed_jobs = 2000;
  options.hazards = hazards;
  options.telemetry = telemetry;
  SimulationDriver driver(*scheduler, env, options);
  return driver.Run();
}

void PrintRecords(const std::vector<RunRecord>& records) {
  for (const auto& record : records) {
    Json line = JsonObject{};
    line.Set("t", Json(record.end_time));
    line.Set("trial", Json(record.trial_id));
    line.Set("rung", Json(record.rung));
    line.Set("bracket", Json(record.bracket));
    line.Set("loss", Json(record.loss));
    line.Set("dropped", Json(record.lost));
    std::cout << line.Dump() << "\n";
  }
}

void DumpDriverRun(const std::string& kind, std::uint64_t seed, int workers) {
  auto telemetry = Telemetry::ForSimulation();
  const DriverResult result =
      RunDriver(kind, seed, workers, HazardOptions{}, telemetry.get());

  std::cout << "== driver " << kind << " seed=" << seed
            << " workers=" << workers << "\n";
  PrintRecords(result.completions);
  std::cout << telemetry->tracer().ToJsonl();
}

void DumpServiceRun(const std::string& kind, std::uint64_t seed, int workers,
                    const HazardOptions& hazards) {
  auto scheduler = MakeScheduler(kind, seed);
  auto telemetry = Telemetry::ForSimulation();
  scheduler->SetTelemetry(telemetry.get());
  DumpEnv env;
  TuningServer server(*scheduler,
                      {.lease_timeout = 30, .telemetry = telemetry.get()});
  // One injector shared by the pool: fates are drawn in job start order,
  // which the virtual-time loop below makes deterministic.
  HazardInjector injector(hazards, seed);
  std::vector<SimulatedWorker> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back(static_cast<std::uint64_t>(i), env,
                      /*heartbeat_interval=*/5.0, /*prefetch=*/1,
                      injector.enabled() ? &injector : nullptr);
  }
  for (double now = 0; now < 2000; now += 0.25) {
    for (auto& worker : pool) {
      if (now >= worker.next_action_time()) worker.OnTick(server, now);
    }
    if (scheduler->Finished()) break;
  }

  std::cout << "== service " << kind << " seed=" << seed
            << " workers=" << workers << "\n";
  const auto stats = server.stats();
  std::cout << "assigned=" << stats.jobs_assigned
            << " completed=" << stats.jobs_completed
            << " expired=" << stats.leases_expired << "\n";
  for (const auto& trial : scheduler->trials()) {
    Json line = JsonObject{};
    line.Set("trial", Json(trial.id));
    line.Set("resource", Json(trial.resource_trained));
    line.Set("status", Json(static_cast<int>(trial.status)));
    std::cout << line.Dump() << "\n";
  }
  std::cout << telemetry->tracer().ToJsonl();
}

/// Runs the same seeded hazard stream through the simulator and the real
/// ThreadPoolExecutor (one worker each, so the lease order — and with it
/// the fate-draw order — is the same sequential order on both) and checks
/// the per-job decision sequences match: same trial, rung, outcome, and
/// loss for every resolved lease. Returns false on divergence.
bool DumpHazardParity(const std::string& kind, std::uint64_t seed,
                      const HazardOptions& hazards) {
  const DriverResult sim =
      RunDriver(kind, seed, /*workers=*/1, hazards, /*telemetry=*/nullptr);

  auto scheduler = MakeScheduler(kind, seed);
  DumpEnv env;
  ExecutorOptions options;
  options.num_workers = 1;
  options.max_jobs = 2000;
  options.hazards = hazards;
  options.hazard_seed = seed;
  options.hazard_duration = [&env](const Job& job) {
    return env.Duration(job.config, job.from_resource, job.to_resource);
  };
  ThreadPoolExecutor executor(
      *scheduler, [&env](const Job& job) {
        return env.Loss(job.config, job.to_resource);
      },
      options);
  const ExecutorResult real = executor.Run();

  std::cout << "== hazard-parity " << kind << " seed=" << seed
            << " straggler=" << hazards.straggler_std
            << " drop=" << hazards.drop_probability << "\n";
  std::cout << "sim: completed=" << sim.jobs_completed
            << " dropped=" << sim.jobs_dropped << "\n";
  std::cout << "executor: completed=" << real.jobs_completed
            << " lost=" << real.jobs_lost << "\n";
  // The decision sequence, stripped of timestamps (the executor's are wall
  // clock): one line per resolved lease, in lease order.
  for (const auto& record : sim.completions) {
    Json line = JsonObject{};
    line.Set("trial", Json(record.trial_id));
    line.Set("rung", Json(record.rung));
    line.Set("bracket", Json(record.bracket));
    line.Set("loss", Json(record.loss));
    line.Set("dropped", Json(record.lost));
    std::cout << line.Dump() << "\n";
  }
  if (sim.completions.size() != real.records.size()) {
    std::cout << "parity=MISMATCH sim_jobs=" << sim.completions.size()
              << " executor_jobs=" << real.records.size() << "\n";
    return false;
  }
  for (std::size_t i = 0; i < sim.completions.size(); ++i) {
    const RunRecord& a = sim.completions[i];
    const RunRecord& b = real.records[i];
    if (a.trial_id != b.trial_id || a.rung != b.rung || a.lost != b.lost ||
        a.loss != b.loss) {
      std::cout << "parity=MISMATCH job=" << i << " sim_trial=" << a.trial_id
                << " exec_trial=" << b.trial_id << " sim_lost=" << a.lost
                << " exec_lost=" << b.lost << "\n";
      return false;
    }
  }
  std::cout << "parity=OK jobs=" << sim.completions.size() << "\n";
  return true;
}

bool DumpHazardRuns(const std::string& kind, std::uint64_t seed, int workers,
                    const HazardOptions& hazards) {
  auto telemetry = Telemetry::ForSimulation();
  const DriverResult result =
      RunDriver(kind, seed, workers, hazards, telemetry.get());
  std::cout << "== hazard-driver " << kind << " seed=" << seed
            << " workers=" << workers
            << " straggler=" << hazards.straggler_std
            << " drop=" << hazards.drop_probability << "\n";
  PrintRecords(result.completions);
  std::cout << "completed=" << result.jobs_completed
            << " dropped=" << result.jobs_dropped << "\n";

  DumpServiceRun(kind, seed, workers, hazards);
  return DumpHazardParity(kind, seed, hazards);
}

}  // namespace
}  // namespace hypertune

int main(int argc, char** argv) {
  if (argc != 4 && argc != 6) {
    std::cerr << "usage: decision_dump <asha|sha|hyperband> <seed> <workers>"
                 " [--hazards <straggler_std>,<drop_prob>]\n";
    return 2;
  }
  const std::string kind = argv[1];
  const auto seed = static_cast<std::uint64_t>(std::strtoull(argv[2], nullptr, 10));
  const int workers = std::atoi(argv[3]);
  if (argc == 6) {
    if (std::string(argv[4]) != "--hazards") {
      std::cerr << "unknown flag '" << argv[4] << "'\n";
      return 2;
    }
    hypertune::HazardOptions hazards;
    char* rest = nullptr;
    hazards.straggler_std = std::strtod(argv[5], &rest);
    if (rest == nullptr || *rest != ',') {
      std::cerr << "--hazards wants <straggler_std>,<drop_prob>\n";
      return 2;
    }
    hazards.drop_probability = std::strtod(rest + 1, nullptr);
    return hypertune::DumpHazardRuns(kind, seed, workers, hazards) ? 0 : 1;
  }
  hypertune::DumpDriverRun(kind, seed, workers);
  hypertune::DumpServiceRun(kind, seed, workers, hypertune::HazardOptions{});
  return 0;
}
