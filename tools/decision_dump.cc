// Decision-identity dump: drives a scheduler through the simulator and
// through the tuning-service protocol, printing every scheduling decision
// (job hand-outs, completions, recommendations) plus the full telemetry
// trace as deterministic JSONL on stdout.
//
// Hot-path PRs must not change scheduling behavior; diffing (or hashing)
// this tool's output before and after a change proves byte-identity:
//
//   ./decision_dump asha 42 500 | sha256sum
//
// Usage: decision_dump <asha|sha|hyperband> <seed> <workers>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/asha.h"
#include "core/async_hyperband.h"
#include "core/sha.h"
#include "service/server.h"
#include "service/worker.h"
#include "sim/driver.h"
#include "telemetry/telemetry.h"

namespace hypertune {
namespace {

SearchSpace DumpSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  space.Add("y", Domain::Continuous(-1.0, 1.0));
  return space;
}

// Deterministic synthetic training: loss improves with resource, ordering
// driven by the sampled point; durations vary per configuration so the
// event queue sees distinct completion times.
class DumpEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    const double x = config.GetDouble("x");
    const double y = config.GetDouble("y");
    return x * x + 0.25 * y * y + 1.0 / (1.0 + resource);
  }
  double Duration(const Configuration& config, Resource from,
                  Resource to) override {
    return (to - from) * (0.5 + config.GetDouble("x"));
  }
};

std::unique_ptr<Scheduler> MakeScheduler(const std::string& kind,
                                         std::uint64_t seed) {
  if (kind == "asha") {
    AshaOptions options;
    options.r = 1;
    options.R = 81;
    options.eta = 3;
    options.max_trials = 300;
    options.seed = seed;
    return std::make_unique<AshaScheduler>(MakeRandomSampler(DumpSpace()),
                                           options);
  }
  if (kind == "sha") {
    ShaOptions options;
    options.n = 81;
    options.r = 1;
    options.R = 81;
    options.eta = 3;
    options.spawn_new_brackets = false;
    options.seed = seed;
    return std::make_unique<SyncShaScheduler>(MakeRandomSampler(DumpSpace()),
                                              options);
  }
  if (kind == "hyperband") {
    AsyncHyperbandOptions options;
    options.n0 = 81;
    options.r = 1;
    options.R = 81;
    options.eta = 3;
    options.seed = seed;
    return std::make_unique<AsyncHyperbandScheduler>(
        MakeRandomSampler(DumpSpace()), options);
  }
  std::cerr << "unknown scheduler kind '" << kind << "'\n";
  std::exit(2);
}

void DumpDriverRun(const std::string& kind, std::uint64_t seed, int workers) {
  auto scheduler = MakeScheduler(kind, seed);
  auto telemetry = Telemetry::ForSimulation();
  scheduler->SetTelemetry(telemetry.get());
  DumpEnv env;
  DriverOptions options;
  options.num_workers = workers;
  options.time_limit = 1e6;
  options.seed = seed;
  options.max_completed_jobs = 2000;
  options.telemetry = telemetry.get();
  SimulationDriver driver(*scheduler, env, options);
  const DriverResult result = driver.Run();

  std::cout << "== driver " << kind << " seed=" << seed
            << " workers=" << workers << "\n";
  for (const auto& record : result.completions) {
    Json line = JsonObject{};
    line.Set("t", Json(record.time));
    line.Set("trial", Json(record.trial_id));
    line.Set("rung", Json(record.rung));
    line.Set("bracket", Json(record.bracket));
    line.Set("loss", Json(record.loss));
    line.Set("dropped", Json(record.dropped));
    std::cout << line.Dump() << "\n";
  }
  std::cout << telemetry->tracer().ToJsonl();
}

void DumpServiceRun(const std::string& kind, std::uint64_t seed, int workers) {
  auto scheduler = MakeScheduler(kind, seed);
  auto telemetry = Telemetry::ForSimulation();
  scheduler->SetTelemetry(telemetry.get());
  DumpEnv env;
  TuningServer server(*scheduler,
                      {.lease_timeout = 30, .telemetry = telemetry.get()});
  std::vector<SimulatedWorker> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back(static_cast<std::uint64_t>(i), env,
                      /*heartbeat_interval=*/5.0);
  }
  for (double now = 0; now < 2000; now += 0.25) {
    for (auto& worker : pool) {
      if (now >= worker.next_action_time()) worker.OnTick(server, now);
    }
    if (scheduler->Finished()) break;
  }

  std::cout << "== service " << kind << " seed=" << seed
            << " workers=" << workers << "\n";
  const auto stats = server.stats();
  std::cout << "assigned=" << stats.jobs_assigned
            << " completed=" << stats.jobs_completed
            << " expired=" << stats.leases_expired << "\n";
  for (const auto& trial : scheduler->trials()) {
    Json line = JsonObject{};
    line.Set("trial", Json(trial.id));
    line.Set("resource", Json(trial.resource_trained));
    line.Set("status", Json(static_cast<int>(trial.status)));
    std::cout << line.Dump() << "\n";
  }
  std::cout << telemetry->tracer().ToJsonl();
}

}  // namespace
}  // namespace hypertune

int main(int argc, char** argv) {
  if (argc != 4) {
    std::cerr << "usage: decision_dump <asha|sha|hyperband> <seed> <workers>\n";
    return 2;
  }
  const std::string kind = argv[1];
  const auto seed = static_cast<std::uint64_t>(std::strtoull(argv[2], nullptr, 10));
  const int workers = std::atoi(argv[3]);
  hypertune::DumpDriverRun(kind, seed, workers);
  hypertune::DumpServiceRun(kind, seed, workers);
  return 0;
}
