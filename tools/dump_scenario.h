// The shared decision-identity scenario: one deterministic search space,
// synthetic training environment, and scheduler zoo, used by both
// tools/decision_dump.cc (golden-digest dumps) and tools/chaos_recovery.cc
// (crash/restart byte-identity). Factored here so the uninterrupted run and
// the chaos run can never drift apart by construction.
//
// RunServiceDecisions is the heart of the chaos harness: it drives a
// virtual-time worker fleet against the tuning service and returns the
// *decision text* — every resolved lease, the incumbent trajectory, and
// the final trial table — with no telemetry or wall-clock content. With a
// CrashPlan it routes the run through a DurableServer, kills the server at
// the K-th handled message, restarts it from disk (snapshot + journal
// replay), and keeps going; the returned text must be byte-identical to
// the uninterrupted run's.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/asha.h"
#include "core/async_hyperband.h"
#include "core/sha.h"
#include "durability/durable_server.h"
#include "fault/fault.h"
#include "fault/fault_fs.h"
#include "lifecycle/hazards.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "service/server.h"
#include "service/worker.h"
#include "sim/environment.h"

namespace hypertune {

inline SearchSpace DumpSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  space.Add("y", Domain::Continuous(-1.0, 1.0));
  return space;
}

// Deterministic synthetic training: loss improves with resource, ordering
// driven by the sampled point; durations vary per configuration so the
// event queue sees distinct completion times.
class DumpEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    const double x = config.GetDouble("x");
    const double y = config.GetDouble("y");
    return x * x + 0.25 * y * y + 1.0 / (1.0 + resource);
  }
  double Duration(const Configuration& config, Resource from,
                  Resource to) override {
    return (to - from) * (0.5 + config.GetDouble("x"));
  }
};

inline std::unique_ptr<Scheduler> MakeDumpScheduler(const std::string& kind,
                                                    std::uint64_t seed) {
  if (kind == "asha") {
    AshaOptions options;
    options.r = 1;
    options.R = 81;
    options.eta = 3;
    options.max_trials = 300;
    options.seed = seed;
    return std::make_unique<AshaScheduler>(MakeRandomSampler(DumpSpace()),
                                           options);
  }
  if (kind == "sha") {
    ShaOptions options;
    options.n = 81;
    options.r = 1;
    options.R = 81;
    options.eta = 3;
    options.spawn_new_brackets = false;
    options.seed = seed;
    return std::make_unique<SyncShaScheduler>(MakeRandomSampler(DumpSpace()),
                                              options);
  }
  if (kind == "hyperband") {
    AsyncHyperbandOptions options;
    options.n0 = 81;
    options.r = 1;
    options.R = 81;
    options.eta = 3;
    options.seed = seed;
    return std::make_unique<AsyncHyperbandScheduler>(
        MakeRandomSampler(DumpSpace()), options);
  }
  return nullptr;
}

/// Crash/restart plan for RunServiceDecisions.
struct CrashPlan {
  /// Kill the server right after it handles this many messages. 0 never
  /// crashes: the run still goes through a DurableServer (journal +
  /// snapshots live), which is how the disk-fault scenarios inject ENOSPC
  /// without also exercising a restart.
  std::size_t crash_at = 0;
  /// Durable state directory (snapshots + journal live here).
  std::string state_dir;
  /// Virtual time the server stays down before recovery. 0 = instant
  /// restart: no lease can expire spuriously and no worker sees a failed
  /// exchange, the regime where the recovered run must be byte-identical.
  /// > 0 exercises worker reconnect backoff instead (identity is then out
  /// — leases may expire during the outage).
  double downtime = 0;
  /// Compact the journal after this many records (small values force the
  /// snapshot path into the crash window under test).
  std::size_t snapshot_every = 64;
  SyncPolicy sync = SyncPolicy::kEveryN;
};

/// How worker messages reach the server. kInProc is a direct call; the TCP
/// transports route every message through a real NetServer on loopback
/// (src/net) — the goldens proving the wire layer is decision-invariant.
enum class DumpTransport { kInProc, kJsonTcp, kBinaryTcp };

inline const char* DumpTransportName(DumpTransport transport) {
  switch (transport) {
    case DumpTransport::kInProc: return "inproc";
    case DumpTransport::kJsonTcp: return "json-tcp";
    case DumpTransport::kBinaryTcp: return "binary-tcp";
  }
  return "?";
}

inline std::optional<DumpTransport> ParseDumpTransport(
    const std::string& name) {
  if (name == "inproc") return DumpTransport::kInProc;
  if (name == "json-tcp") return DumpTransport::kJsonTcp;
  if (name == "binary-tcp") return DumpTransport::kBinaryTcp;
  return std::nullopt;
}

struct ServiceDecisionsOptions {
  std::string kind = "asha";
  std::uint64_t seed = 1;
  int workers = 8;
  HazardOptions hazards;
  std::optional<CrashPlan> crash;
  DumpTransport transport = DumpTransport::kInProc;
  /// Client-side socket fault seam for the TCP transports (not owned);
  /// faults are injected between the worker fleet and the NetServer.
  SocketIo* client_io = nullptr;
  /// File-op fault seam for the durable path (not owned). Requires a
  /// CrashPlan (that's what routes the run through a DurableServer); use
  /// crash_at = 0 for a durable run that never crashes.
  FileOps* file_ops = nullptr;
};

struct ServiceDecisionsResult {
  /// The deterministic decision dump (resolved leases, incumbent
  /// trajectory, final trial table, protocol stats).
  std::string text;
  /// Messages the server handled across all incarnations.
  std::size_t messages_handled = 0;
  /// Failed worker exchanges retried with backoff (downtime > 0 only).
  std::size_t worker_retries = 0;
  /// Journal events replayed by the post-crash incarnation.
  std::size_t replayed_events = 0;
  /// Snapshot generation the final incarnation ended on.
  std::uint64_t generation = 0;
  bool recovered = false;
  bool finished = false;
  /// Degraded-mode counters, summed across server incarnations.
  DurabilityStats durability;
  /// True when the final incarnation ended still degraded.
  bool degraded_final = false;
};

namespace dump_internal {

/// ServerConnection whose delivery is a std::function — the chaos harness
/// swaps server incarnations (and simulates downtime) inside it.
class HarnessConnection final : public ServerConnection {
 public:
  using Handler = std::function<std::optional<Json>(const Json&, double)>;
  explicit HarnessConnection(Handler handler)
      : handler_(std::move(handler)) {}
  std::optional<Json> Send(const Json& message, double now) override {
    return handler_(message, now);
  }

 private:
  Handler handler_;
};

}  // namespace dump_internal

/// Renders one study's decision text — every resolved lease, the incumbent
/// trajectory, the final trial table. Shared by the single-study harness
/// below and the multi-study chaos harness (tools/study_scenario.h): both
/// must produce these bytes from the same state or the byte-identity
/// checks compare apples to oranges.
inline std::string FormatDecisionText(const std::string& kind,
                                      std::uint64_t seed, int workers,
                                      const TuningServer& server,
                                      const Scheduler& scheduler) {
  std::ostringstream out;
  out << "== service-decisions " << kind << " seed=" << seed
      << " workers=" << workers << "\n";
  const auto stats = server.stats();
  out << "assigned=" << stats.jobs_assigned
      << " completed=" << stats.jobs_completed
      << " expired=" << stats.leases_expired << "\n";
  for (const auto& record : server.run_records()) {
    Json line = JsonObject{};
    line.Set("t", Json(record.end_time));
    line.Set("trial", Json(record.trial_id));
    line.Set("rung", Json(record.rung));
    line.Set("bracket", Json(record.bracket));
    line.Set("loss", Json(record.loss));
    line.Set("dropped", Json(record.lost));
    line.Set("lease", Json(static_cast<std::int64_t>(record.lease_id)));
    line.Set("worker", Json(record.worker));
    out << line.Dump() << "\n";
  }
  out << "-- incumbent\n";
  for (const auto& point : server.run_recommendations()) {
    Json line = JsonObject{};
    line.Set("t", Json(point.time));
    line.Set("trial", Json(point.trial_id));
    line.Set("loss", Json(point.loss));
    line.Set("resource", Json(point.resource));
    out << line.Dump() << "\n";
  }
  out << "-- trials\n";
  for (const auto& trial : scheduler.trials()) {
    Json line = JsonObject{};
    line.Set("trial", Json(trial.id));
    line.Set("resource", Json(trial.resource_trained));
    line.Set("status", Json(static_cast<int>(trial.status)));
    out << line.Dump() << "\n";
  }
  return out.str();
}

/// The server configuration every decision-identity run uses. Exposed so
/// post-run recovery checks (chaos_recovery's ENOSPC scenarios) can build
/// an equivalent server over the same state dir.
inline ServerOptions DumpServerOptions() {
  return ServerOptions{.lease_timeout = 30, .track_recommendations = true};
}

inline ServiceDecisionsResult RunServiceDecisions(
    const ServiceDecisionsOptions& opts) {
  ServiceDecisionsResult result;
  DumpEnv env;
  // One injector shared by the pool, drawn in job start order. It lives on
  // the worker side of the wire, so a *server* crash never resets it —
  // exactly the real deployment's failure boundary.
  HazardInjector injector(opts.hazards, opts.seed);

  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<TuningServer> plain;
  std::optional<DurableServer> durable;
  const ServerOptions server_options = DumpServerOptions();

  // Degraded-mode counters survive incarnation teardown by accumulating
  // here before each reset.
  const auto harvest = [&]() {
    if (!durable) return;
    const DurabilityStats d = durable->durability_stats();
    result.durability.journal_write_failures += d.journal_write_failures;
    result.durability.journal_sync_failures += d.journal_sync_failures;
    result.durability.snapshot_failures += d.snapshot_failures;
    result.durability.degraded_entered += d.degraded_entered;
    result.durability.degraded_exited += d.degraded_exited;
    result.durability.records_buffered += d.records_buffered;
    result.durability.grants_denied += d.grants_denied;
    result.degraded_final = durable->degraded();
  };

  const auto boot = [&]() {
    harvest();
    durable.reset();
    plain.reset();
    scheduler = MakeDumpScheduler(opts.kind, opts.seed);
    HT_CHECK_MSG(scheduler != nullptr,
                 "unknown scheduler kind '" << opts.kind << "'");
    if (opts.crash) {
      durable.emplace(*scheduler, server_options,
                      DurabilityOptions{.dir = opts.crash->state_dir,
                                        .sync = opts.crash->sync,
                                        .snapshot_every =
                                            opts.crash->snapshot_every,
                                        .file_ops = opts.file_ops});
      if (durable->recovered()) {
        result.recovered = true;
        result.replayed_events += durable->replayed_events();
      }
    } else {
      plain = std::make_unique<TuningServer>(*scheduler, server_options);
    }
  };
  boot();

  // TCP transports put a real NetServer between the fleet and the server.
  // The harness stays sequential (every Send blocks for its reply), so the
  // server sees the exact in-process message order and the decision text is
  // byte-identical — that invariance is what the transport goldens check.
  std::optional<NetServer> net;
  std::vector<std::unique_ptr<NetWorkerClient>> clients;
  if (opts.transport != DumpTransport::kInProc) {
    // A crash plan tears down the server object mid-run; rebinding sockets
    // under the harness adds nothing the in-process chaos path doesn't
    // already prove. Keep the combination off the table.
    HT_CHECK_MSG(!opts.crash,
                 "crash plans require the in-process transport");
    NetServerOptions net_options;
    net_options.clock = NetClock::kMessage;
    // Virtual time only advances with messages, so idle expiry has nothing
    // to do here; park the timer so it never touches the service while this
    // thread reads scheduler state between exchanges.
    net_options.tick_interval = 3600;
    net.emplace(*plain, net_options);
    net->Start();
    NetClientOptions client_options;
    client_options.transport = opts.transport == DumpTransport::kBinaryTcp
                                   ? WireTransport::kBinary
                                   : WireTransport::kJson;
    client_options.io = opts.client_io;
    // Connection pool, workers mapped round-robin: 500-worker dumps should
    // exercise many concurrent connections without hoarding 500 fds.
    const int pool_size = std::min(opts.workers, 64);
    for (int i = 0; i < pool_size; ++i) {
      clients.push_back(std::make_unique<NetWorkerClient>(
          "127.0.0.1", net->port(), client_options));
    }
  }

  if (opts.crash) {
    // Journal each hazard fate draw as an audit-only record. The draw
    // happens worker-side (possibly while the server is down — the guard),
    // so replay ignores these; they exist for post-mortems.
    injector.SetPlanObserver(
        [&](double base_duration, const HazardPlan& plan) {
          if (!durable) return;
          Json record = JsonObject{};
          record.Set("kind", Json("hazard"));
          record.Set("base_duration", Json(base_duration));
          record.Set("duration", Json(plan.duration));
          if (plan.drop_after) record.Set("drop_after", Json(*plan.drop_after));
          durable->JournalAuxiliary(record);
        });
  }

  bool down = false;
  double restart_time = 0;
  dump_internal::HarnessConnection connection(
      [&](const Json& message, double now) -> std::optional<Json> {
        if (net) {
          // Every worker message names its sender; use it to pin each
          // worker to one connection in the pool.
          const auto sender = message.Has("worker")
                                  ? static_cast<std::uint64_t>(
                                        message.at("worker").AsInt())
                                  : 0u;
          auto reply =
              clients[sender % clients.size()]->Send(message, now);
          if (reply) ++result.messages_handled;
          return reply;
        }
        if (down) {
          if (now < restart_time) return std::nullopt;
          boot();  // recovery: latest snapshot + journal tail from disk
          down = false;
        }
        Json reply = durable ? durable->HandleMessage(message, now)
                             : plain->HandleMessage(message, now);
        ++result.messages_handled;
        if (opts.crash && result.messages_handled == opts.crash->crash_at) {
          // Kill the server after the reply left: all in-memory state dies,
          // only the state dir survives. The worker keeps this reply — a
          // crash tears *between* messages, mirroring a process killed
          // between event-loop iterations.
          harvest();
          durable.reset();
          scheduler.reset();
          if (opts.crash->downtime > 0) {
            down = true;
            restart_time = now + opts.crash->downtime;
          } else {
            boot();
          }
        }
        return reply;
      });

  std::vector<SimulatedWorker> pool;
  pool.reserve(static_cast<std::size_t>(opts.workers));
  const WorkerRetryOptions retry{.initial_backoff = 0.5,
                                 .max_backoff = 8.0,
                                 .multiplier = 2.0,
                                 .jitter = 0.25,
                                 .seed = opts.seed};
  for (int i = 0; i < opts.workers; ++i) {
    pool.emplace_back(static_cast<std::uint64_t>(i), env,
                      /*heartbeat_interval=*/5.0, /*prefetch=*/1,
                      injector.enabled() ? &injector : nullptr, retry);
  }
  for (double now = 0; now < 2000; now += 0.25) {
    for (auto& worker : pool) {
      if (now >= worker.next_action_time()) worker.OnTick(connection, now);
    }
    if (scheduler != nullptr && scheduler->Finished()) break;
  }
  // A crash landing near the end can leave the server down with no worker
  // traffic left to trigger recovery; recover now so the final state is
  // readable.
  if (down) boot();
  // Join the event loop before inspecting server state from this thread.
  if (net) net->Stop();

  for (const auto& worker : pool) result.worker_retries += worker.retries();
  result.finished = scheduler->Finished();
  if (durable) result.generation = durable->generation();
  harvest();

  const TuningServer& server = durable ? durable->server() : *plain;
  result.text = FormatDecisionText(opts.kind, opts.seed, opts.workers, server,
                                   *scheduler);
  return result;
}

}  // namespace hypertune
