// hypertune_cli — run any tuner against any surrogate benchmark from the
// command line and print (and optionally export) the aggregated results.
//
// Examples:
//   hypertune_cli --benchmark=cifar_arch --tuner=asha --workers=25 \
//                 --time=150 --trials=5
//   hypertune_cli --benchmark=ptb_lstm --tuner=vizier --workers=500 \
//                 --time-in-r=6 --out=/tmp/ptb.json
//   hypertune_cli --list
//
// Network mode (src/net): `--serve=PORT` runs the tuning service on a real
// TCP socket (optionally durable with --state-dir); `--connect=HOST:PORT`
// drives a fleet of simulated workers against such a server over the
// binary or JSON wire protocol. See README "Running over the network".
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "analysis/experiment.h"
#include "analysis/export.h"
#include "analysis/report.h"
#include "common/check.h"
#include "common/table.h"
#include "durability/durable_server.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "registry/registry.h"
#include "service/worker.h"
#include "study/study_manager.h"
#include "surrogate/benchmarks.h"
#include "telemetry/telemetry.h"

using namespace hypertune;

namespace {

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stod(it->second);
  }
  int GetInt(const std::string& key, int fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stoi(it->second);
  }
  bool Has(const std::string& key) const { return values.contains(key); }
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    HT_CHECK_MSG(arg.rfind("--", 0) == 0, "flags look like --key=value, got '"
                                              << arg << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values[arg] = "true";
    } else {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

int Usage() {
  std::cout <<
      R"(hypertune_cli — surrogate hyperparameter-tuning experiments

Flags:
  --list                 print available tuners and benchmarks, then exit
  --benchmark=NAME       surrogate task (default cifar_arch)
  --tuner=NAME[,NAME...] tuner(s) to run (default asha)
  --workers=N            parallel workers (default 25)
  --time=T               virtual-time budget in the task's units (minutes)
  --time-in-r=X          budget as a multiple of mean time(R) (overrides --time)
  --trials=N             independent repetitions (default 3)
  --eta=E --s=S          successive-halving parameters (default 4, 0)
  --r-divisor=D          r = R / D (default 256)
  --n=N                  bracket size / n0 (default 256)
  --seed=S               base seed (default 1000)
  --grid-points=N        rows in the printed time series (default 12)
  --out=PATH             also export results as JSON
  --trace-out=PATH       write a Chrome trace_event JSON of the first
                         repetition (open in chrome://tracing or Perfetto);
                         byte-identical across reruns with the same seed
  --trace-jsonl=PATH     same events as JSONL (one object per line)
  --metrics-out=PATH     write the metrics-registry snapshot as JSON

Network mode:
  --serve=PORT           run the tuning service on a TCP port (0 picks an
                         ephemeral one, printed at startup); scheduler from
                         --tuner/--benchmark/--seed as usual
  --state-dir=DIR        (serve) durable mode: WAL + snapshots in DIR; a
                         restart with the same flags recovers the study
  --serve-seconds=T      (serve) stop after T wall seconds (default: run
                         until Ctrl-C)
  --lease-timeout=T      (serve) lease timeout in wall seconds (default 60)
  --multi-study          (serve) host a StudyManager instead of one study:
                         clients create/suspend/resume/delete/list studies
                         over the wire; --tuner/--seed set the default
                         study's config, --state-dir roots per-study
                         durability under DIR/studies/<name>/
  --shards=N             (serve --multi-study) lock shards (default 4)
  --max-leases=N         (serve --multi-study) default per-study quota
                         (default 0 = unlimited)
  --connect=HOST:PORT    drive --workers simulated workers against a served
                         study; the surrogate --benchmark supplies losses
  --study=NAME           (connect) pin every message the fleet sends to
                         study NAME (absent: the server's default study)
  --create=KIND          (connect) create --study first with scheduler KIND
                         (asha|sha|hyperband|random) seeded by --seed; an
                         already-exists error just means another fleet won
                         the race
  --transport=NAME       (connect) binary (default) or json
  --time-scale=X         (connect) virtual task-time units per wall second
                         (default 60)
  --connect-seconds=T    (connect) stop after T wall seconds (default 10)
)";
  return 0;
}

std::atomic<bool> g_interrupted{false};

void OnInterrupt(int) { g_interrupted.store(true); }

/// Blocks until Ctrl-C / SIGTERM, or `serve_seconds` elapse (0 = forever).
void ServeUntilInterrupted(double serve_seconds) {
  std::signal(SIGINT, OnInterrupt);
  std::signal(SIGTERM, OnInterrupt);
  const auto start = std::chrono::steady_clock::now();
  while (!g_interrupted.load()) {
    if (serve_seconds > 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= serve_seconds) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

/// `--serve=PORT`: the tuning service on a real socket, wall-clock leases,
/// idle-expiry timer running — the deployment shape from the paper, scaled
/// down to one process.
int RunServe(const Flags& flags) {
  const std::string benchmark_name = flags.Get("benchmark", "cifar_arch");
  const std::string tuner = flags.Get("tuner", "asha");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1000));
  auto bench = benchmarks::ByName(benchmark_name, seed);

  TunerParams params;
  params.eta = flags.GetDouble("eta", 4);
  params.s = flags.GetInt("s", 0);
  params.r_divisor = flags.GetDouble("r-divisor", 256);
  params.n = static_cast<std::size_t>(flags.GetInt("n", 256));
  params.seed = seed;
  auto scheduler = MakeTunerByName(tuner, *bench, params);

  const ServerOptions server_options{
      .lease_timeout = flags.GetDouble("lease-timeout", 60),
      .track_recommendations = true};
  std::unique_ptr<TuningServer> plain;
  std::optional<DurableServer> durable;
  MessageService* service = nullptr;
  if (flags.Has("state-dir")) {
    durable.emplace(*scheduler, server_options,
                    DurabilityOptions{.dir = flags.Get("state-dir", "")});
    if (durable->recovered()) {
      std::cout << "recovered generation " << durable->generation()
                << " (+" << durable->replayed_events()
                << " journal events) from " << flags.Get("state-dir", "")
                << "\n";
    }
    service = &*durable;
  } else {
    plain = std::make_unique<TuningServer>(*scheduler, server_options);
    service = plain.get();
  }

  NetServerOptions net_options;
  net_options.port = flags.GetInt("serve", 0);
  net_options.clock = NetClock::kWall;
  NetServer net(*service, net_options);
  net.Start();
  std::cout << "serving " << tuner << " on " << benchmark_name << " at "
            << net_options.bind_address << ":" << net.port() << "\n";

  ServeUntilInterrupted(flags.GetDouble("serve-seconds", 0));
  net.Stop();  // drain replies, close sockets, join — workers see EOF

  const TuningServer& server = durable ? durable->server() : *plain;
  const auto net_stats = net.stats();
  const auto stats = server.stats();
  std::cout << "connections=" << net_stats.connections_accepted
            << " messages=" << net_stats.messages_handled
            << " ticks=" << net_stats.timer_ticks
            << " rejected=" << net_stats.messages_rejected << "\n"
            << "assigned=" << stats.jobs_assigned
            << " completed=" << stats.jobs_completed
            << " expired=" << stats.leases_expired << "\n";
  if (const auto best = server.Current()) {
    std::cout << "best: trial=" << best->trial_id << " loss="
              << FormatDouble(best->loss, 4) << "\n";
  }
  return 0;
}

/// `--serve=PORT --multi-study`: one server, many studies. Lease traffic
/// routes by the "study" field on each message; the admin vocabulary
/// (create_study/.../list_studies) manages tenants over the same socket.
/// With --state-dir each study journals under DIR/studies/<name>/ and a
/// restart recovers all of them.
int RunServeMultiStudy(const Flags& flags) {
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1000));
  const auto bench =
      benchmarks::ByName(flags.Get("benchmark", "cifar_arch"), seed);

  StudyManagerOptions options;
  options.shards = static_cast<std::size_t>(flags.GetInt("shards", 4));
  options.server =
      ServerOptions{.lease_timeout = flags.GetDouble("lease-timeout", 60),
                    .track_recommendations = true};
  options.durability_root = flags.Get("state-dir", "");
  options.default_max_leases =
      static_cast<std::size_t>(flags.GetInt("max-leases", 0));
  Json default_config = JsonObject{};
  default_config.Set("kind", Json(flags.Get("tuner", "asha")));
  default_config.Set("seed", Json(static_cast<std::int64_t>(seed)));
  options.default_config = default_config;
  StudyManager manager(MakeStudySchedulerFactory(bench->space()), options);
  if (manager.stats().recovered > 0) {
    std::cout << "recovered " << manager.stats().recovered << " studies from "
              << options.durability_root << "\n";
  }

  NetServerOptions net_options;
  net_options.port = flags.GetInt("serve", 0);
  net_options.clock = NetClock::kWall;
  NetServer net(manager, net_options);
  net.Start();
  std::cout << "serving studies (default tuner " << flags.Get("tuner", "asha")
            << " on " << flags.Get("benchmark", "cifar_arch") << ", "
            << options.shards << " shards) at " << net_options.bind_address
            << ":" << net.port() << "\n";

  ServeUntilInterrupted(flags.GetDouble("serve-seconds", 0));
  net.Stop();

  const auto net_stats = net.stats();
  std::cout << "connections=" << net_stats.connections_accepted
            << " messages=" << net_stats.messages_handled
            << " ticks=" << net_stats.timer_ticks
            << " rejected=" << net_stats.messages_rejected << "\n";
  for (const auto& info : manager.ListStudies()) {
    std::cout << "study " << info.name
              << (info.suspended ? " suspended" : " active")
              << " assigned=" << info.jobs_assigned
              << " completed=" << info.jobs_completed
              << " active_leases=" << info.active_leases << "\n";
  }
  return 0;
}

/// `--connect=HOST:PORT`: a simulated-worker fleet speaking the wire
/// protocol against a remote server; virtual task time advances at
/// --time-scale units per wall second.
int RunConnect(const Flags& flags) {
  const std::string target = flags.Get("connect", "");
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "--connect wants HOST:PORT\n";
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);

  const std::string transport_name = flags.Get("transport", "binary");
  NetClientOptions client_options;
  if (transport_name == "binary") {
    client_options.transport = WireTransport::kBinary;
  } else if (transport_name == "json") {
    client_options.transport = WireTransport::kJson;
  } else {
    std::cerr << "--transport wants binary or json\n";
    return 2;
  }
  client_options.reply_timeout = 10;

  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1000));
  auto bench = benchmarks::ByName(flags.Get("benchmark", "cifar_arch"), seed);
  const int workers = flags.GetInt("workers", 4);
  const double time_scale = flags.GetDouble("time-scale", 60);
  const double connect_seconds = flags.GetDouble("connect-seconds", 10);

  std::vector<NetWorkerClient> clients;
  std::vector<SimulatedWorker> fleet;
  clients.reserve(static_cast<std::size_t>(workers));
  fleet.reserve(static_cast<std::size_t>(workers));
  const std::string study = flags.Get("study", "");
  for (int i = 0; i < workers; ++i) {
    clients.emplace_back(host, port, client_options);
    fleet.emplace_back(static_cast<std::uint64_t>(i), *bench,
                       /*heartbeat_interval=*/5.0);
    if (!study.empty()) fleet.back().SetStudy(study);
  }

  if (flags.Has("create")) {
    if (study.empty()) {
      std::cerr << "--create wants --study=NAME to create\n";
      return 2;
    }
    Json create = JsonObject{};
    create.Set("type", Json("create_study"));
    create.Set("study", Json(study));
    Json config = JsonObject{};
    config.Set("kind", Json(flags.Get("create", "random")));
    config.Set("seed", Json(static_cast<std::int64_t>(seed)));
    create.Set("config", config);
    const auto reply = clients.front().Send(create, 0.0);
    std::cout << "create_study " << study << ": "
              << (reply ? reply->Dump() : "(no reply)") << "\n";
  }

  std::signal(SIGINT, OnInterrupt);
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (g_interrupted.load() || elapsed >= connect_seconds) break;
    const double now = elapsed * time_scale;
    for (int i = 0; i < workers; ++i) {
      if (now >= fleet[static_cast<std::size_t>(i)].next_action_time()) {
        fleet[static_cast<std::size_t>(i)].OnTick(
            clients[static_cast<std::size_t>(i)], now);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  std::size_t completed = 0;
  std::size_t retries = 0;
  for (const auto& worker : fleet) {
    completed += worker.jobs_completed();
    retries += worker.retries();
  }
  std::cout << "workers=" << workers << " completed=" << completed
            << " retries=" << retries << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags = ParseFlags(argc, argv);
    if (flags.Has("help") || flags.Has("h")) return Usage();
    if (flags.Has("serve")) {
      return flags.Has("multi-study") ? RunServeMultiStudy(flags)
                                      : RunServe(flags);
    }
    if (flags.Has("connect")) return RunConnect(flags);
    if (flags.Has("list")) {
      std::cout << "tuners:";
      for (const auto& name : TunerNames()) std::cout << " " << name;
      std::cout << "\nbenchmarks:";
      for (const auto& name : benchmarks::AllNames()) std::cout << " " << name;
      std::cout << "\n";
      return 0;
    }

    const std::string benchmark_name = flags.Get("benchmark", "cifar_arch");
    const std::string tuner_list = flags.Get("tuner", "asha");

    TunerParams params;
    params.eta = flags.GetDouble("eta", 4);
    params.s = flags.GetInt("s", 0);
    params.r_divisor = flags.GetDouble("r-divisor", 256);
    params.n = static_cast<std::size_t>(flags.GetInt("n", 256));

    ExperimentOptions options;
    options.num_trials = flags.GetInt("trials", 3);
    options.num_workers = flags.GetInt("workers", 25);
    options.grid_points = static_cast<std::size_t>(
        flags.GetInt("grid-points", 12));
    options.base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1000));

    // Observability: a virtual-clock sink keeps simulated traces
    // deterministic (byte-identical across reruns of the same seed).
    const bool want_telemetry = flags.Has("trace-out") ||
                                flags.Has("trace-jsonl") ||
                                flags.Has("metrics-out");
    std::unique_ptr<Telemetry> telemetry;
    if (want_telemetry) {
      telemetry = Telemetry::ForSimulation();
      options.telemetry = telemetry.get();
    }

    auto probe = benchmarks::ByName(benchmark_name, 1);
    if (flags.Has("time-in-r")) {
      options.time_limit = flags.GetDouble("time-in-r", 4) * probe->MeanTimeOfR();
    } else {
      options.time_limit = flags.GetDouble("time", 150);
    }

    std::cout << "benchmark: " << benchmark_name << " (R=" << probe->R()
              << ", mean time(R)=" << FormatDouble(probe->MeanTimeOfR(), 2)
              << ")\nworkers: " << options.num_workers
              << ", budget: " << FormatDouble(options.time_limit, 1)
              << ", trials: " << options.num_trials << "\n\n";

    std::vector<MethodResult> results;
    std::string remaining = tuner_list;
    while (!remaining.empty()) {
      const auto comma = remaining.find(',');
      const std::string tuner = remaining.substr(0, comma);
      remaining = comma == std::string::npos ? "" : remaining.substr(comma + 1);

      results.push_back(RunExperiment(
          tuner,
          [&](std::uint64_t seed) {
            return benchmarks::ByName(benchmark_name, seed);
          },
          [&](const SyntheticBenchmark& bench, std::uint64_t seed) {
            TunerParams seeded = params;
            seeded.seed = seed;
            return MakeTunerByName(tuner, bench, seeded);
          },
          options));
    }

    const std::string metric = probe->spec().metric_name;
    std::cout << SeriesTable(results, "time", metric).ToMarkdown() << "\n"
              << SummaryTable(results, metric).ToMarkdown();

    if (flags.Has("out")) {
      const std::string path = flags.Get("out", "");
      if (ExportExperiment(path, benchmark_name, results)) {
        std::cout << "\nexported to " << path << "\n";
      } else {
        std::cerr << "failed to write " << path << "\n";
        return 1;
      }
    }

    if (telemetry) {
      std::cout << "\n## Telemetry\n\n" << telemetry->SummaryText();
      const auto write_or_die = [](const std::string& path,
                                   const std::string& content) {
        if (WriteFile(path, content)) {
          std::cout << "wrote " << path << "\n";
          return true;
        }
        std::cerr << "failed to write " << path << "\n";
        return false;
      };
      if (flags.Has("trace-out") &&
          !write_or_die(flags.Get("trace-out", ""),
                        telemetry->tracer().ToChromeTrace().Dump(2) + "\n")) {
        return 1;
      }
      if (flags.Has("trace-jsonl") &&
          !write_or_die(flags.Get("trace-jsonl", ""),
                        telemetry->tracer().ToJsonl())) {
        return 1;
      }
      if (flags.Has("metrics-out") &&
          !write_or_die(flags.Get("metrics-out", ""),
                        telemetry->MetricsJson().Dump(2) + "\n")) {
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
