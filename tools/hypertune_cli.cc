// hypertune_cli — run any tuner against any surrogate benchmark from the
// command line and print (and optionally export) the aggregated results.
//
// Examples:
//   hypertune_cli --benchmark=cifar_arch --tuner=asha --workers=25 \
//                 --time=150 --trials=5
//   hypertune_cli --benchmark=ptb_lstm --tuner=vizier --workers=500 \
//                 --time-in-r=6 --out=/tmp/ptb.json
//   hypertune_cli --list
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "analysis/experiment.h"
#include "analysis/export.h"
#include "analysis/report.h"
#include "common/check.h"
#include "common/table.h"
#include "registry/registry.h"
#include "surrogate/benchmarks.h"
#include "telemetry/telemetry.h"

using namespace hypertune;

namespace {

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stod(it->second);
  }
  int GetInt(const std::string& key, int fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stoi(it->second);
  }
  bool Has(const std::string& key) const { return values.contains(key); }
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    HT_CHECK_MSG(arg.rfind("--", 0) == 0, "flags look like --key=value, got '"
                                              << arg << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values[arg] = "true";
    } else {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

int Usage() {
  std::cout <<
      R"(hypertune_cli — surrogate hyperparameter-tuning experiments

Flags:
  --list                 print available tuners and benchmarks, then exit
  --benchmark=NAME       surrogate task (default cifar_arch)
  --tuner=NAME[,NAME...] tuner(s) to run (default asha)
  --workers=N            parallel workers (default 25)
  --time=T               virtual-time budget in the task's units (minutes)
  --time-in-r=X          budget as a multiple of mean time(R) (overrides --time)
  --trials=N             independent repetitions (default 3)
  --eta=E --s=S          successive-halving parameters (default 4, 0)
  --r-divisor=D          r = R / D (default 256)
  --n=N                  bracket size / n0 (default 256)
  --seed=S               base seed (default 1000)
  --grid-points=N        rows in the printed time series (default 12)
  --out=PATH             also export results as JSON
  --trace-out=PATH       write a Chrome trace_event JSON of the first
                         repetition (open in chrome://tracing or Perfetto);
                         byte-identical across reruns with the same seed
  --trace-jsonl=PATH     same events as JSONL (one object per line)
  --metrics-out=PATH     write the metrics-registry snapshot as JSON
)";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags = ParseFlags(argc, argv);
    if (flags.Has("help") || flags.Has("h")) return Usage();
    if (flags.Has("list")) {
      std::cout << "tuners:";
      for (const auto& name : TunerNames()) std::cout << " " << name;
      std::cout << "\nbenchmarks:";
      for (const auto& name : benchmarks::AllNames()) std::cout << " " << name;
      std::cout << "\n";
      return 0;
    }

    const std::string benchmark_name = flags.Get("benchmark", "cifar_arch");
    const std::string tuner_list = flags.Get("tuner", "asha");

    TunerParams params;
    params.eta = flags.GetDouble("eta", 4);
    params.s = flags.GetInt("s", 0);
    params.r_divisor = flags.GetDouble("r-divisor", 256);
    params.n = static_cast<std::size_t>(flags.GetInt("n", 256));

    ExperimentOptions options;
    options.num_trials = flags.GetInt("trials", 3);
    options.num_workers = flags.GetInt("workers", 25);
    options.grid_points = static_cast<std::size_t>(
        flags.GetInt("grid-points", 12));
    options.base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1000));

    // Observability: a virtual-clock sink keeps simulated traces
    // deterministic (byte-identical across reruns of the same seed).
    const bool want_telemetry = flags.Has("trace-out") ||
                                flags.Has("trace-jsonl") ||
                                flags.Has("metrics-out");
    std::unique_ptr<Telemetry> telemetry;
    if (want_telemetry) {
      telemetry = Telemetry::ForSimulation();
      options.telemetry = telemetry.get();
    }

    auto probe = benchmarks::ByName(benchmark_name, 1);
    if (flags.Has("time-in-r")) {
      options.time_limit = flags.GetDouble("time-in-r", 4) * probe->MeanTimeOfR();
    } else {
      options.time_limit = flags.GetDouble("time", 150);
    }

    std::cout << "benchmark: " << benchmark_name << " (R=" << probe->R()
              << ", mean time(R)=" << FormatDouble(probe->MeanTimeOfR(), 2)
              << ")\nworkers: " << options.num_workers
              << ", budget: " << FormatDouble(options.time_limit, 1)
              << ", trials: " << options.num_trials << "\n\n";

    std::vector<MethodResult> results;
    std::string remaining = tuner_list;
    while (!remaining.empty()) {
      const auto comma = remaining.find(',');
      const std::string tuner = remaining.substr(0, comma);
      remaining = comma == std::string::npos ? "" : remaining.substr(comma + 1);

      results.push_back(RunExperiment(
          tuner,
          [&](std::uint64_t seed) {
            return benchmarks::ByName(benchmark_name, seed);
          },
          [&](const SyntheticBenchmark& bench, std::uint64_t seed) {
            TunerParams seeded = params;
            seeded.seed = seed;
            return MakeTunerByName(tuner, bench, seeded);
          },
          options));
    }

    const std::string metric = probe->spec().metric_name;
    std::cout << SeriesTable(results, "time", metric).ToMarkdown() << "\n"
              << SummaryTable(results, metric).ToMarkdown();

    if (flags.Has("out")) {
      const std::string path = flags.Get("out", "");
      if (ExportExperiment(path, benchmark_name, results)) {
        std::cout << "\nexported to " << path << "\n";
      } else {
        std::cerr << "failed to write " << path << "\n";
        return 1;
      }
    }

    if (telemetry) {
      std::cout << "\n## Telemetry\n\n" << telemetry->SummaryText();
      const auto write_or_die = [](const std::string& path,
                                   const std::string& content) {
        if (WriteFile(path, content)) {
          std::cout << "wrote " << path << "\n";
          return true;
        }
        std::cerr << "failed to write " << path << "\n";
        return false;
      };
      if (flags.Has("trace-out") &&
          !write_or_die(flags.Get("trace-out", ""),
                        telemetry->tracer().ToChromeTrace().Dump(2) + "\n")) {
        return 1;
      }
      if (flags.Has("trace-jsonl") &&
          !write_or_die(flags.Get("trace-jsonl", ""),
                        telemetry->tracer().ToJsonl())) {
        return 1;
      }
      if (flags.Has("metrics-out") &&
          !write_or_die(flags.Get("metrics-out", ""),
                        telemetry->MetricsJson().Dump(2) + "\n")) {
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
