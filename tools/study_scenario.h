// Multi-study chaos scenario: one StudyManager hosting N studies, each
// driven by its own virtual-time worker fleet, crashed and recovered
// mid-run.
//
// The identity claim is per study: because studies are independent (own
// scheduler, own server, own journal) and every fleet runs on the same
// virtual-time grid as the single-study harness, study i's decision text
// after a crash/recovery must be byte-identical to an uninterrupted
// SINGLE-study run with the same (kind, seed) — interleaving a hundred
// tenants and killing the server must perturb nobody's search. Studies
// cycle through the scheduler zoo x the golden seeds so the claim covers
// the same surface as the single-study goldens.
//
// The harness mirrors RunServiceDecisions exactly where it matters:
// identical worker fleets (ids, heartbeat, retry seeds), identical grid
// (now = 0..2000 step 0.25), and no manager-level Tick — lease expiry
// happens only through each study's own message-driven ticks, as in the
// single-study run. The only difference is the study id riding on each
// message, which the per-study TuningServer ignores.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dump_scenario.h"
#include "study/study_manager.h"

namespace hypertune {

struct MultiStudyOptions {
  /// Number of concurrent studies (cycling kinds x seeds below).
  std::size_t studies = 100;
  /// Workers per study (each study gets its own fleet, ids 0..N-1, exactly
  /// like the single-study harness).
  int workers = 8;
  /// Durable state root; the manager is killed after `crash_at` handled
  /// messages and rebuilt from this directory. 0 = never crash.
  std::string state_dir;
  std::size_t crash_at = 0;
  std::size_t shards = 16;
  std::size_t snapshot_every = 64;
  SyncPolicy sync = SyncPolicy::kEveryN;
};

struct MultiStudyResult {
  /// Decision text per study, keyed by study name.
  std::map<std::string, std::string> texts;
  /// (kind, seed) per study name — the single-study golden each text must
  /// match.
  std::map<std::string, std::pair<std::string, std::uint64_t>> combos;
  std::size_t messages_handled = 0;
  /// Studies restored by the post-crash incarnation.
  std::size_t recovered_studies = 0;
  bool crashed = false;
};

/// The (kind, seed) combo for study index i — the zoo x the golden seeds.
inline std::pair<std::string, std::uint64_t> MultiStudyCombo(std::size_t i) {
  static const char* kKinds[] = {"asha", "sha", "hyperband"};
  static const std::uint64_t kSeeds[] = {1, 42, 1000};
  return {kKinds[i % 3], kSeeds[(i / 3) % 3]};
}

inline std::string MultiStudyName(std::size_t i) {
  const auto [kind, seed] = MultiStudyCombo(i);
  return "s" + std::to_string(i) + "-" + kind + "-" + std::to_string(seed);
}

inline MultiStudyResult RunMultiStudyDecisions(const MultiStudyOptions& opts) {
  HT_CHECK_MSG(!opts.state_dir.empty(),
               "multi-study chaos needs a durable state dir");
  MultiStudyResult result;
  DumpEnv env;

  StudyManagerOptions manager_options;
  manager_options.shards = opts.shards;
  manager_options.server =
      ServerOptions{.lease_timeout = 30, .track_recommendations = true};
  manager_options.durability_root = opts.state_dir;
  manager_options.sync = opts.sync;
  manager_options.snapshot_every = opts.snapshot_every;
  manager_options.default_config = Json();  // no default study: all scoped
  const StudySchedulerFactory factory = MakeStudySchedulerFactory(DumpSpace());

  auto manager = std::make_unique<StudyManager>(factory, manager_options);
  for (std::size_t i = 0; i < opts.studies; ++i) {
    const auto [kind, seed] = MultiStudyCombo(i);
    const std::string name = MultiStudyName(i);
    Json config = JsonObject{};
    config.Set("kind", Json(kind));
    config.Set("seed", Json(static_cast<std::int64_t>(seed)));
    HT_CHECK_MSG(manager->CreateStudy(name, config, 0.0),
                 "cannot create study " << name);
    result.combos[name] = {kind, seed};
  }

  // The crash tears between messages, exactly like the single-study chaos
  // harness: the manager object dies (journals close mid-generation), the
  // replacement recovers every study from disk.
  dump_internal::HarnessConnection connection(
      [&](const Json& message, double now) -> std::optional<Json> {
        Json reply = manager->HandleMessage(message, now);
        ++result.messages_handled;
        if (opts.crash_at != 0 &&
            result.messages_handled == opts.crash_at) {
          manager.reset();
          manager = std::make_unique<StudyManager>(factory, manager_options);
          result.crashed = true;
          result.recovered_studies = manager->stats().recovered;
        }
        return reply;
      });

  // One fleet per study, byte-compatible with the single-study harness:
  // same ids, same heartbeat, same retry stream (seeded by the study's
  // seed), same grid. SetStudy pins every message to its tenant.
  struct Fleet {
    std::string name;
    std::vector<SimulatedWorker> workers;
    bool finished = false;
  };
  std::vector<Fleet> fleets(opts.studies);
  for (std::size_t i = 0; i < opts.studies; ++i) {
    const auto [kind, seed] = MultiStudyCombo(i);
    fleets[i].name = MultiStudyName(i);
    fleets[i].workers.reserve(static_cast<std::size_t>(opts.workers));
    const WorkerRetryOptions retry{.initial_backoff = 0.5,
                                   .max_backoff = 8.0,
                                   .multiplier = 2.0,
                                   .jitter = 0.25,
                                   .seed = seed};
    for (int w = 0; w < opts.workers; ++w) {
      fleets[i].workers.emplace_back(static_cast<std::uint64_t>(w), env,
                                     /*heartbeat_interval=*/5.0,
                                     /*prefetch=*/1, nullptr, retry);
      fleets[i].workers.back().SetStudy(fleets[i].name);
    }
  }

  for (double now = 0; now < 2000; now += 0.25) {
    bool all_finished = true;
    for (Fleet& fleet : fleets) {
      if (fleet.finished) continue;
      for (auto& worker : fleet.workers) {
        if (now >= worker.next_action_time()) worker.OnTick(connection, now);
      }
      // Mirrors the single-study loop's break: once a study's scheduler is
      // done its fleet goes quiet (the single-study run stops there too).
      const Scheduler* scheduler = manager->FindScheduler(fleet.name);
      if (scheduler != nullptr && scheduler->Finished()) {
        fleet.finished = true;
      } else {
        all_finished = false;
      }
    }
    if (all_finished) break;
  }

  for (const Fleet& fleet : fleets) {
    const TuningServer* server = manager->FindServer(fleet.name);
    const Scheduler* scheduler = manager->FindScheduler(fleet.name);
    HT_CHECK(server != nullptr && scheduler != nullptr);
    const auto& [kind, seed] = result.combos[fleet.name];
    result.texts[fleet.name] =
        FormatDecisionText(kind, seed, opts.workers, *server, *scheduler);
  }
  return result;
}

}  // namespace hypertune
