// Admin-vocabulary smoke over the real wire: a StudyManager behind a
// NetServer, driven through a binary-TCP NetWorkerClient. Walks the whole
// multi-tenant surface — create (with and without quota), duplicate and
// invalid creates, scoped grants, quota denial, "*" fair allocation,
// suspend/resume freezing, delete, list_studies — and prints each exchange
// as a deterministic transcript. CI diffs stdout against
// tools/golden/study_smoke.txt: any drift in the admin protocol, the
// binary codec's new frame types, or the manager's routing shows up as a
// one-line diff.
//
// Determinism: virtual-time clock (NetClock::kMessage, idle timer parked),
// in-memory studies, seeded schedulers, fixed message script. No wall
// clock, pids, or ports reach the transcript.
#include <iostream>
#include <string>

#include "common/json.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "study/study_manager.h"
#include "dump_scenario.h"

namespace hypertune {
namespace {

int RunSmoke() {
  StudyManagerOptions options;
  options.server =
      ServerOptions{.lease_timeout = 30, .track_recommendations = true};
  options.default_config = Json();  // admin-only server: no default study
  StudyManager manager(MakeStudySchedulerFactory(DumpSpace()), options);

  NetServerOptions net_options;
  net_options.clock = NetClock::kMessage;
  net_options.tick_interval = 3600;  // park the idle timer: virtual time
  NetServer net(manager, net_options);
  net.Start();
  NetWorkerClient client("127.0.0.1", net.port(),
                         NetClientOptions{.transport = WireTransport::kBinary});

  double now = 0;
  const auto exchange = [&](const Json& message) {
    std::cout << ">> " << message.Dump() << "\n";
    const auto reply = client.Send(message, now);
    if (!reply) {
      std::cout << "<< (no reply)\n";
      return Json();
    }
    std::cout << "<< " << reply->Dump() << "\n";
    now += 1.0;
    return *reply;
  };
  const auto admin = [](const char* type, const std::string& study) {
    Json message = JsonObject{};
    message.Set("type", Json(type));
    message.Set("study", Json(study));
    return message;
  };
  const auto request = [](std::int64_t worker, const std::string& study) {
    Json message = JsonObject{};
    message.Set("type", Json("request_job"));
    message.Set("worker", Json(worker));
    message.Set("study", Json(study));
    return message;
  };
  const auto list = [] {
    Json message = JsonObject{};
    message.Set("type", Json("list_studies"));
    return message;
  };

  std::cout << "== study-smoke (binary-tcp)\n";
  exchange(list());

  Json create_alpha = admin("create_study", "alpha");
  Json alpha_config = JsonObject{};
  alpha_config.Set("kind", Json("asha"));
  alpha_config.Set("seed", Json(std::int64_t{1}));
  create_alpha.Set("config", alpha_config);
  exchange(create_alpha);

  Json create_beta = admin("create_study", "beta");
  Json beta_config = JsonObject{};
  beta_config.Set("kind", Json("random"));
  beta_config.Set("seed", Json(std::int64_t{2}));
  create_beta.Set("config", beta_config);
  create_beta.Set("max_leases", Json(std::int64_t{2}));
  exchange(create_beta);

  // Duplicate and invalid names are protocol errors, not crashes.
  exchange(create_alpha);
  Json bad_name = admin("create_study", "../escape");
  bad_name.Set("config", alpha_config);
  exchange(bad_name);

  // Scoped grants; beta's quota denies the third lease.
  const Json granted = exchange(request(1, "alpha"));
  exchange(request(2, "beta"));
  exchange(request(3, "beta"));
  exchange(request(4, "beta"));

  // "*" takes work from any ready study and names it in the reply.
  exchange(request(5, "*"));

  // Completing alpha's lease routes back by the study key.
  if (granted.IsObject() && granted.Has("job_id")) {
    Json report = JsonObject{};
    report.Set("type", Json("report"));
    report.Set("worker", Json(std::int64_t{1}));
    report.Set("job_id", granted.at("job_id"));
    report.Set("loss", Json(0.125));
    report.Set("study", Json("alpha"));
    exchange(report);
  }

  // Suspension stops grants and freezes leases; resume re-opens them.
  exchange(admin("suspend_study", "beta"));
  exchange(request(6, "beta"));
  exchange(list());
  exchange(admin("resume_study", "beta"));

  // Deletion: the study disappears from routing and the listing.
  exchange(admin("delete_study", "beta"));
  exchange(request(7, "beta"));
  exchange(list());

  net.Stop();
  std::cout << "== done\n";
  return 0;
}

}  // namespace
}  // namespace hypertune

int main() { return hypertune::RunSmoke(); }
