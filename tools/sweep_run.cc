// sweep_run — the parallel sweep engine's CLI driver (src/sweep).
//
//   sweep_run --json <out> [--text <out>] [--tables-dir <dir>] [--threads N]
//             [--tasks a,b] [--schedulers x,y] [--seeds 1,2,3] [--fleets 4,16]
//             [--rows N] [--fidelities F] [--table-seed S] [--max-jobs J]
//             [--time-limit T] [--budget FULL_TRAINS]
//             [--engine calendar|heap] [--resamples B]
//
// The default stop criterion is --budget 20: every cell gets virtual time
// worth 20 average full trainings of its benchmark, the paper's equal-time
// footing (a benchmark's absolute R scale cancels out).
//
// Packs one HTTB0001 table per task into --tables-dir (deterministic in
// --table-seed), mmaps each once, fans the (task x scheduler x seed x
// fleet) grid across --threads workers, and writes the htsweep-report-v1
// JSON to --json ("-" = stdout). The JSON is byte-identical at any thread
// count — CI diffs it against tools/golden/sweep_report.json. The text
// rendering goes to --text or stdout; wall-clock throughput goes to stderr
// so nothing nondeterministic can leak into the diffed artifact.
//
// --table <name>=<file> (repeatable) skips packing and mmaps pre-packed
// tables instead, replacing the --tasks axis. This is how CI reproduces
// the golden report bit-for-bit on any machine: packing evaluates the
// synthetic benchmarks through libm (pow/exp), whose last-ulp rounding is
// libc-specific, but everything downstream of a packed table — scheduler
// decisions, the simulator clock, rank/regret/bootstrap statistics — is
// pure arithmetic, so sweeps over the committed golden tables
// (tools/golden/tables/*.httb) are machine-independent.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "surrogate/benchmarks.h"
#include "surrogate/table.h"
#include "sweep/engine.h"
#include "sweep/report.h"

namespace hypertune {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: sweep_run --json <out> [--text <out>] [--tables-dir <dir>]\n"
      "                 [--table name=file ...]\n"
      "                 [--threads N] [--tasks a,b] [--schedulers x,y]\n"
      "                 [--seeds 1,2,3] [--fleets 4,16] [--rows N]\n"
      "                 [--fidelities F] [--table-seed S] [--max-jobs J]\n"
      "                 [--time-limit T] [--budget FULL_TRAINS]\n"
      "                 [--engine calendar|heap] [--resamples B]\n");
  return 2;
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int Main(int argc, char** argv) {
  std::string json_path, text_path, tables_dir = ".";
  std::vector<std::string> tasks = {"cifar_convnet", "ptb_lstm"};
  std::vector<std::string> schedulers = {"asha", "sha", "hyperband", "random"};
  std::vector<std::pair<std::string, std::string>> table_files;
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  std::vector<int> fleets = {4, 16};
  std::uint32_t rows = 2048;
  std::size_t fidelities = 9;
  std::uint64_t table_seed = 1;
  SweepSpec spec;
  spec.full_train_budget = 20;
  SweepOptions options;
  SweepReportOptions report_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      HT_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = next();
    } else if (arg == "--text") {
      text_path = next();
    } else if (arg == "--tables-dir") {
      tables_dir = next();
    } else if (arg == "--threads") {
      options.threads = std::stoi(next());
    } else if (arg == "--tasks") {
      tasks = SplitList(next());
    } else if (arg == "--table") {
      const std::string value = next();
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        return Usage();
      }
      table_files.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (arg == "--schedulers") {
      schedulers = SplitList(next());
    } else if (arg == "--seeds") {
      seeds.clear();
      for (const auto& s : SplitList(next())) seeds.push_back(std::stoull(s));
    } else if (arg == "--fleets") {
      fleets.clear();
      for (const auto& f : SplitList(next())) fleets.push_back(std::stoi(f));
    } else if (arg == "--rows") {
      rows = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--fidelities") {
      fidelities = std::stoul(next());
    } else if (arg == "--table-seed") {
      table_seed = std::stoull(next());
    } else if (arg == "--max-jobs") {
      spec.max_jobs = std::stoul(next());
    } else if (arg == "--time-limit") {
      spec.time_limit = std::stod(next());
    } else if (arg == "--budget") {
      spec.full_train_budget = std::stod(next());
    } else if (arg == "--engine") {
      const std::string engine = next();
      if (engine == "calendar") {
        spec.event_queue = SimEngine::kCalendar;
      } else if (engine == "heap") {
        spec.event_queue = SimEngine::kBinaryHeap;
      } else {
        return Usage();
      }
    } else if (arg == "--resamples") {
      report_options.bootstrap_resamples = std::stoul(next());
    } else {
      return Usage();
    }
  }
  if (json_path.empty()) return Usage();

  // One mmap'd table per benchmark — every sweep thread shares the one
  // mapping. Either load pre-packed files (--table) or pack each task now.
  std::vector<std::unique_ptr<TabularBenchmark>> tables;
  if (!table_files.empty()) {
    for (const auto& [name, path] : table_files) {
      tables.push_back(TabularBenchmark::FromFile(path));
      spec.benchmarks.push_back({name, tables.back().get()});
    }
  } else {
    for (const auto& task : tasks) {
      auto bench = benchmarks::ByName(task, table_seed);
      const std::string bytes =
          PackTable(TabulateBenchmark(*bench, rows, fidelities, table_seed));
      const std::string path = tables_dir + "/" + task + ".httb";
      HT_CHECK_MSG(WriteFile(path, bytes), "cannot write " << path);
      tables.push_back(TabularBenchmark::FromFile(path));
      spec.benchmarks.push_back({task, tables.back().get()});
    }
  }
  spec.schedulers = schedulers;
  spec.seeds = seeds;
  spec.fleets = fleets;

  SweepThroughput throughput;
  const auto results = RunSweep(spec, options, &throughput);
  const Json report = BuildSweepReport(spec, results, report_options);

  const std::string json = report.Dump(2) + "\n";
  if (json_path == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    HT_CHECK_MSG(WriteFile(json_path, json), "cannot write " << json_path);
  }
  const std::string text = SweepReportText(report);
  if (text_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    HT_CHECK_MSG(WriteFile(text_path, text), "cannot write " << text_path);
  }
  std::fprintf(stderr,
               "sweep_run: %zu cells, %llu simulated jobs, %d threads, "
               "%.3fs wall (%.0f cells/s)\n",
               throughput.cells,
               static_cast<unsigned long long>(throughput.jobs),
               options.threads, throughput.wall_seconds,
               throughput.wall_seconds > 0
                   ? static_cast<double>(throughput.cells) /
                         throughput.wall_seconds
                   : 0.0);
  return 0;
}

}  // namespace
}  // namespace hypertune

int main(int argc, char** argv) {
  try {
    return hypertune::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_run: %s\n", e.what());
    return 1;
  }
}
