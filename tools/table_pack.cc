// table_pack — builds and inspects HTTB0001 tabular-benchmark files
// (src/surrogate/table.h).
//
//   table_pack --synthetic <task> --out <file> [--rows N] [--fidelities F]
//              [--seed S] [--trial-seed T]
//       Samples N configurations from the named surrogate task
//       (cifar_convnet, ptb_lstm, ... — see benchmarks::AllNames) and
//       tabulates losses and cumulative training times on a geometric
//       F-point fidelity ladder ending at the task's R.
//
//   table_pack --info <file>
//       Prints the header (rows, fidelities, resumable, ladder, size) and
//       verifies the CRC.
//
//   table_pack --verify <file>
//       Re-reads every byte and re-walks every CRC-checked section and row
//       (ladder monotonicity, finite losses, ascending cumulative times).
//       Exits 0 with a summary line on a clean table, 1 with the first
//       violation on corruption — CI gates sweeps on this.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/check.h"
#include "surrogate/benchmarks.h"
#include "surrogate/table.h"

namespace hypertune {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: table_pack --synthetic <task> --out <file> [--rows N]\n"
      "                  [--fidelities F] [--seed S] [--trial-seed T]\n"
      "       table_pack --info <file>\n"
      "       table_pack --verify <file>\n");
  return 2;
}

int PackSynthetic(const std::string& task, const std::string& out_path,
                  std::uint32_t rows, std::size_t num_fidelities,
                  std::uint64_t seed, std::uint64_t trial_seed) {
  auto bench = benchmarks::ByName(task, trial_seed);
  const TableData data = TabulateBenchmark(*bench, rows, num_fidelities, seed);
  const std::string bytes = PackTable(data);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "table_pack: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  std::printf("wrote %s: task=%s rows=%u fidelities=%zu resumable=%d %zu bytes\n",
              out_path.c_str(), task.c_str(), rows, num_fidelities,
              data.resumable ? 1 : 0, bytes.size());
  return 0;
}

int Info(const std::string& path) {
  auto bench = TabularBenchmark::FromFile(path);
  std::printf("%s: HTTB0001 rows=%u fidelities=%zu resumable=%d\n",
              path.c_str(), bench->rows(), bench->num_fidelities(),
              bench->resumable() ? 1 : 0);
  std::printf("ladder:");
  Configuration probe;
  probe.Set("row", std::int64_t{0});
  for (std::size_t i = 0; i < bench->num_fidelities(); ++i) {
    std::printf(" %g", bench->LossAt(0, i));
  }
  std::printf(" (row 0 losses)\n");
  std::printf("max_resource=%g row0_full_time=%g\n", bench->max_resource(),
              bench->CumTimeAt(0, bench->num_fidelities() - 1));
  return 0;
}

int Verify(const std::string& path) {
  TableVerifyStats stats;
  try {
    stats = VerifyTableFile(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "table_pack: verification FAILED: %s\n", e.what());
    return 1;
  }
  std::printf("%s: OK rows=%u fidelities=%zu resumable=%d %zu bytes\n",
              path.c_str(), stats.rows, stats.num_fidelities,
              stats.resumable ? 1 : 0, stats.file_bytes);
  return 0;
}

int Main(int argc, char** argv) {
  std::string synthetic, out, info, verify;
  std::uint32_t rows = 1000;
  std::size_t fidelities = 9;
  std::uint64_t seed = 1, trial_seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      HT_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--synthetic") {
      synthetic = next();
    } else if (arg == "--out") {
      out = next();
    } else if (arg == "--rows") {
      rows = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--fidelities") {
      fidelities = std::stoul(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--trial-seed") {
      trial_seed = std::stoull(next());
    } else if (arg == "--info") {
      info = next();
    } else if (arg == "--verify") {
      verify = next();
    } else {
      return Usage();
    }
  }
  if (!verify.empty()) return Verify(verify);
  if (!info.empty()) return Info(info);
  if (synthetic.empty() || out.empty()) return Usage();
  return PackSynthetic(synthetic, out, rows, fidelities, seed, trial_seed);
}

}  // namespace
}  // namespace hypertune

int main(int argc, char** argv) {
  try {
    return hypertune::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "table_pack: %s\n", e.what());
    return 1;
  }
}
