// table_pack — builds and inspects HTTB0001 tabular-benchmark files
// (src/surrogate/table.h).
//
//   table_pack --synthetic <task> --out <file> [--rows N] [--fidelities F]
//              [--seed S] [--trial-seed T]
//       Samples N configurations from the named surrogate task
//       (cifar_convnet, ptb_lstm, ... — see benchmarks::AllNames) and
//       tabulates losses and cumulative training times on a geometric
//       F-point fidelity ladder ending at the task's R.
//
//   table_pack --info <file>
//       Prints the header (rows, fidelities, resumable, ladder, size) and
//       verifies the CRC.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "surrogate/benchmarks.h"
#include "surrogate/table.h"

namespace hypertune {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: table_pack --synthetic <task> --out <file> [--rows N]\n"
      "                  [--fidelities F] [--seed S] [--trial-seed T]\n"
      "       table_pack --info <file>\n");
  return 2;
}

int PackSynthetic(const std::string& task, const std::string& out_path,
                  std::uint32_t rows, std::size_t num_fidelities,
                  std::uint64_t seed, std::uint64_t trial_seed) {
  auto bench = benchmarks::ByName(task, trial_seed);
  TableData data;
  data.rows = rows;
  data.resumable = bench->spec().resumable;
  // Geometric ladder ending at R, successive-halving style (factor 2).
  const double R = bench->R();
  data.fidelities.resize(num_fidelities);
  for (std::size_t i = 0; i < num_fidelities; ++i) {
    data.fidelities[num_fidelities - 1 - i] =
        R / static_cast<double>(std::uint64_t{1} << i);
  }
  data.losses.reserve(std::size_t{rows} * num_fidelities);
  data.cum_times.reserve(std::size_t{rows} * num_fidelities);
  Rng rng(seed);
  for (std::uint32_t row = 0; row < rows; ++row) {
    const Configuration config = bench->space().Sample(rng);
    for (double fidelity : data.fidelities) {
      data.losses.push_back(bench->Loss(config, fidelity));
      data.cum_times.push_back(bench->Duration(config, 0, fidelity));
    }
  }
  const std::string bytes = PackTable(data);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "table_pack: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  std::printf("wrote %s: task=%s rows=%u fidelities=%zu resumable=%d %zu bytes\n",
              out_path.c_str(), task.c_str(), rows, num_fidelities,
              data.resumable ? 1 : 0, bytes.size());
  return 0;
}

int Info(const std::string& path) {
  auto bench = TabularBenchmark::FromFile(path);
  std::printf("%s: HTTB0001 rows=%u fidelities=%zu resumable=%d\n",
              path.c_str(), bench->rows(), bench->num_fidelities(),
              bench->resumable() ? 1 : 0);
  std::printf("ladder:");
  Configuration probe;
  probe.Set("row", std::int64_t{0});
  for (std::size_t i = 0; i < bench->num_fidelities(); ++i) {
    std::printf(" %g", bench->LossAt(0, i));
  }
  std::printf(" (row 0 losses)\n");
  std::printf("max_resource=%g row0_full_time=%g\n", bench->max_resource(),
              bench->CumTimeAt(0, bench->num_fidelities() - 1));
  return 0;
}

int Main(int argc, char** argv) {
  std::string synthetic, out, info;
  std::uint32_t rows = 1000;
  std::size_t fidelities = 9;
  std::uint64_t seed = 1, trial_seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      HT_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--synthetic") {
      synthetic = next();
    } else if (arg == "--out") {
      out = next();
    } else if (arg == "--rows") {
      rows = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--fidelities") {
      fidelities = std::stoul(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--trial-seed") {
      trial_seed = std::stoull(next());
    } else if (arg == "--info") {
      info = next();
    } else {
      return Usage();
    }
  }
  if (!info.empty()) return Info(info);
  if (synthetic.empty() || out.empty()) return Usage();
  return PackSynthetic(synthetic, out, rows, fidelities, seed, trial_seed);
}

}  // namespace
}  // namespace hypertune

int main(int argc, char** argv) {
  try {
    return hypertune::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "table_pack: %s\n", e.what());
    return 1;
  }
}
