// Seeded wire fuzzer: hammers a live NetServer over loopback TCP with a
// mix of valid frames, bit-flipped mutations of valid frames, pure random
// bytes, JSON-line garbage, and frames split mid-header — the traffic a
// hostile or broken client could ever produce. The server runs with every
// hardening knob engaged (max_connections, max_outbuf_bytes, overload
// shedding) so the fuzz also walks the eviction/shed paths.
//
// The tool asserts nothing about replies — by design most inputs are
// garbage and most connections get poisoned and closed. The contract is
// purely "no crash, no hang, no leak": CI runs it under ASan/UBSan
// (`wire_fuzz --frames 50000`) and any sanitizer report or non-zero exit
// fails the build. Fully deterministic in --seed, so a failing run
// replays exactly.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/random_search.h"
#include "net/codec.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "service/server.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

/// One fuzzing connection. Sends are bounded by SO_SNDTIMEO and reads are
/// non-blocking drains; any socket error just means "reconnect".
class FuzzClient {
 public:
  explicit FuzzClient(int port) : port_(port) { Connect(); }
  ~FuzzClient() { Close(); }

  bool Connect() {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    timeval timeout{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    return true;
  }

  /// False when the connection died (peer closed it, or the send timed
  /// out) — the caller reconnects and the fuzz continues.
  bool Send(std::string_view bytes) {
    if (fd_ < 0) return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Drains whatever replies are pending without blocking; the bytes are
  /// discarded — the fuzzer only cares that the server survives.
  void Drain() {
    if (fd_ < 0) return;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) continue;
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) Close();  // peer closed: reconnect on next send
      return;
    }
  }

  bool connected() const { return fd_ >= 0; }

 private:
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  int port_;
  int fd_ = -1;
};

/// A well-formed request drawn from the full lease vocabulary (sometimes
/// study-scoped; the studies don't exist, which exercises error replies).
Json ValidRequest(Rng& rng) {
  Json message = JsonObject{};
  const std::int64_t worker = rng.UniformInt(0, 7);
  switch (rng.Index(4)) {
    case 0:
      message.Set("type", Json("request_job"));
      message.Set("worker", Json(worker));
      break;
    case 1:
      message.Set("type", Json("request_jobs"));
      message.Set("worker", Json(worker));
      message.Set("count", Json(rng.UniformInt(1, 4)));
      break;
    case 2:
      message.Set("type", Json("heartbeat"));
      message.Set("worker", Json(worker));
      message.Set("job_id", Json(rng.UniformInt(-2, 50)));
      break;
    default:
      message.Set("type", Json("report"));
      message.Set("worker", Json(worker));
      message.Set("job_id", Json(rng.UniformInt(-2, 50)));
      message.Set("loss", Json(rng.Uniform()));
      break;
  }
  if (rng.Bernoulli(0.1)) message.Set("study", Json("no-such-study"));
  return message;
}

std::string RandomBytes(Rng& rng, std::size_t max_size) {
  std::string bytes(1 + rng.Index(max_size), '\0');
  for (char& byte : bytes) {
    byte = static_cast<char>(rng.UniformInt(0, 255));
  }
  return bytes;
}

struct FuzzCounts {
  std::size_t valid = 0;
  std::size_t mutated = 0;
  std::size_t random = 0;
  std::size_t json = 0;
  std::size_t split = 0;
  std::size_t reconnects = 0;
};

int RunFuzz(std::size_t frames, std::uint64_t seed) {
  RandomSearchOptions options;
  options.R = 10;
  options.max_trials = -1;  // never finishes: grants keep flowing
  RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(scheduler, {.lease_timeout = 60});

  NetServerOptions net_options;
  net_options.clock = NetClock::kWall;
  net_options.tick_interval = 0.01;
  net_options.max_connections = 12;
  net_options.max_outbuf_bytes = 1u << 16;
  net_options.overload_shed_lag = 0.25;
  NetServer net(server, net_options);
  net.Start();

  Rng rng(seed);
  std::vector<FuzzClient> clients;
  clients.reserve(8);
  for (int i = 0; i < 8; ++i) clients.emplace_back(net.port());

  FuzzCounts counts;
  for (std::size_t i = 0; i < frames; ++i) {
    FuzzClient& client = clients[rng.Index(clients.size())];
    if (!client.connected() && !client.Connect()) continue;

    std::string bytes;
    bool split = false;
    const double draw = rng.Uniform();
    if (draw < 0.35) {
      bytes = EncodeMessage(ValidRequest(rng), rng.Uniform(0, 1000));
      ++counts.valid;
    } else if (draw < 0.65) {
      // A valid frame with 1..8 random bytes flipped: hits every decode
      // rejection (magic, version, type, length, CRC, payload underrun).
      bytes = EncodeMessage(ValidRequest(rng), rng.Uniform(0, 1000));
      const std::size_t flips = 1 + rng.Index(8);
      for (std::size_t f = 0; f < flips; ++f) {
        bytes[rng.Index(bytes.size())] ^=
            static_cast<char>(1 + rng.UniformInt(0, 254));
      }
      ++counts.mutated;
    } else if (draw < 0.80) {
      bytes = RandomBytes(rng, 128);
      ++counts.random;
    } else if (draw < 0.90) {
      // JSON-lines transport: valid envelope or line noise. A leading '{'
      // flips the connection into JSON mode for good.
      if (rng.Bernoulli(0.5)) {
        bytes = EncodeJsonLine(ValidRequest(rng), rng.Uniform(0, 1000));
      } else {
        bytes = "{" + RandomBytes(rng, 64) + "\n";
      }
      ++counts.json;
    } else {
      // Mid-frame split: send a prefix now, usually the rest next time —
      // and sometimes never, leaving a truncated tail for the close path.
      bytes = EncodeMessage(ValidRequest(rng), rng.Uniform(0, 1000));
      split = true;
      ++counts.split;
    }

    bool ok;
    if (split) {
      const std::size_t cut = 1 + rng.Index(bytes.size() - 1);
      ok = client.Send(std::string_view(bytes).substr(0, cut));
      if (ok && rng.Bernoulli(0.8)) {
        ok = client.Send(std::string_view(bytes).substr(cut));
      }
    } else {
      ok = client.Send(bytes);
    }
    if (!ok) {
      ++counts.reconnects;
      client.Connect();
    }
    if (rng.Bernoulli(0.25)) client.Drain();
  }
  for (FuzzClient& client : clients) client.Drain();
  clients.clear();
  net.Stop();

  const NetServerStats stats = net.stats();
  std::printf(
      "wire_fuzz frames=%zu seed=%llu valid=%zu mutated=%zu random=%zu "
      "json=%zu split=%zu reconnects=%zu\n",
      frames, static_cast<unsigned long long>(seed), counts.valid,
      counts.mutated, counts.random, counts.json, counts.split,
      counts.reconnects);
  std::printf(
      "server   handled=%zu rejected=%zu bad_magic=%zu bad_version=%zu "
      "bad_crc=%zu oversized=%zu truncated=%zu\n",
      stats.messages_handled, stats.messages_rejected, stats.frames_bad_magic,
      stats.frames_bad_version, stats.frames_bad_crc, stats.frames_oversized,
      stats.frames_truncated);
  std::printf(
      "server   accepted=%zu closed=%zu shed_conns=%zu evicted=%zu "
      "shed_requests=%zu ticks=%zu\n",
      stats.connections_accepted, stats.connections_closed,
      stats.connections_shed, stats.slow_clients_evicted, stats.requests_shed,
      stats.timer_ticks);

  // Sanity: the fuzz actually reached the server and exercised both the
  // happy path and several rejection kinds. (Correctness of replies is the
  // chaos harness's job; this tool's contract is survival.)
  if (stats.messages_handled == 0 || stats.frames_bad_magic == 0 ||
      stats.frames_bad_crc == 0) {
    std::printf("wire_fuzz: traffic mix failed to exercise the server\n");
    return 1;
  }
  std::printf("wire_fuzz passed: server survived the storm\n");
  return 0;
}

}  // namespace
}  // namespace hypertune

int main(int argc, char** argv) {
  std::size_t frames = 50000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--frames" && i + 1 < argc) {
      frames = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--frames N] [--seed S]\n", argv[0]);
      return 2;
    }
  }
  return hypertune::RunFuzz(frames, seed);
}
